"""The unified fault plane: FaultPlan semantics and seeded chaos campaigns.

Three layers under test:

* **FaultPlan rule semantics** -- partitions (symmetric groups and
  asymmetric directed blocks) with seq-window healing, first-match link
  fault rules, corrupt-vs-drop cause logging, latency/skew extra delay,
  and the canonical spec/hash/fresh round trip that makes a plan
  replayable from its JSON artifact alone.
* **Cross-transport replay equivalence** -- the same seeded plan, fed the
  same per-channel message sequences, makes identical decisions on
  :class:`InProcessTransport` and :class:`TcpTransport` (checked both by
  driving the transports directly with a scripted message stream and by
  running the Acast workload end to end over real sockets).
* **Campaigns** -- :func:`run_case` against the guarantee table (safety
  always; liveness for delivery-preserving plans within the kill
  threshold; a typed :class:`ThresholdExceededAbort` beyond it), the
  failure-artifact dump with its one-line repro command, and the CLI
  replay path.

Campaign tests run full MPC evaluations and are ``chaos``-marked so the
tests/conftest.py SIGALRM cap bounds them; the big sampled-plan soak is
tier2.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.faults import (
    CORRUPTED,
    FaultPlan,
    LinkFault,
    LinkLatency,
    PARTITIONED,
    Partition,
    ProcessFault,
    ThresholdExceededAbort,
    run_campaign,
    run_case,
    sample_plan,
)
from repro.faults.campaign import (
    OK,
    STALLED_ALLOWED,
    THRESHOLD_ABORT,
    dump_artifact,
    main as campaign_main,
    repro_command,
)
from repro.runtime import InProcessTransport
from repro.runtime.tcp_transport import TcpTransport
from repro.runtime.transport import DELIVER, DROP, DUPLICATE, HOLD
from repro.sim.messages import Message


# -- rule validation ---------------------------------------------------------

def test_link_fault_probability_validation():
    with pytest.raises(ValueError, match="must be in"):
        LinkFault(drop=1.2)
    with pytest.raises(ValueError, match="exceed 1"):
        LinkFault(drop=0.5, corrupt=0.4, reorder=0.2)
    # duplicate draws from the opposite end of the hash interval, so it may
    # coexist with a full drop+corrupt+reorder budget.
    LinkFault(drop=0.5, corrupt=0.3, reorder=0.2, duplicate=0.9)


def test_partition_rejects_overlapping_groups():
    with pytest.raises(ValueError, match="multiple groups"):
        Partition(groups=({1, 2}, {2, 3}))


def test_negative_clock_skew_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        FaultPlan(clock_skews={1: -0.5})


def test_latency_rule_rejects_negative():
    with pytest.raises(ValueError, match="non-negative"):
        LinkLatency(base=-0.1)


# -- partition windows and healing ------------------------------------------

def test_partition_blocks_by_seq_window_and_heals():
    plan = FaultPlan(
        seed=1,
        partitions=[
            Partition(groups=({3}, {1, 2}), from_seq=2, until_seq=5)
        ],
    )
    decisions = [plan.decide(1, 3, seq, can_hold=True) for seq in range(7)]
    assert decisions == [DELIVER, DELIVER, DROP, DROP, DROP, DELIVER, DELIVER]
    # The log distinguishes the partition cause from a probabilistic drop.
    assert [row[0] for row in plan.log[2:5]] == [PARTITIONED] * 3
    # Same-group traffic flows throughout the window.
    assert plan.decide(1, 2, 3, can_hold=True) == DELIVER


def test_asymmetric_blocks_are_directed():
    plan = FaultPlan(partitions=[Partition(blocks=((1, 2),))])
    assert plan.decide(1, 2, 0, can_hold=True) == DROP
    assert plan.decide(2, 1, 0, can_hold=True) == DELIVER


def test_party_outside_all_groups_is_unaffected():
    plan = FaultPlan(partitions=[Partition(groups=({1}, {2}))])
    assert plan.decide(1, 2, 0, can_hold=True) == DROP
    assert plan.decide(1, 3, 0, can_hold=True) == DELIVER
    assert plan.decide(3, 2, 0, can_hold=True) == DELIVER


# -- link fault rules --------------------------------------------------------

def test_corrupt_drops_but_logs_its_own_cause():
    corrupting = FaultPlan(link_faults=[LinkFault(corrupt=1.0)])
    assert corrupting.decide(1, 2, 0, can_hold=True) == DROP
    assert corrupting.log == [(CORRUPTED, 1, 2, 0)]
    dropping = FaultPlan(link_faults=[LinkFault(drop=1.0)])
    assert dropping.decide(1, 2, 0, can_hold=True) == DROP
    assert dropping.log == [(DROP, 1, 2, 0)]


def test_first_matching_link_rule_wins():
    plan = FaultPlan(
        link_faults=[
            LinkFault(sender=1, drop=1.0),
            LinkFault(duplicate=1.0),
        ]
    )
    assert plan.decide(1, 2, 0, can_hold=True) == DROP
    assert plan.decide(2, 1, 0, can_hold=True) == DUPLICATE


def test_reorder_respects_can_hold():
    plan = FaultPlan(link_faults=[LinkFault(reorder=1.0)])
    assert plan.decide(1, 2, 0, can_hold=True) == HOLD
    assert plan.decide(1, 2, 1, can_hold=False) == DELIVER


def test_seq_window_gates_link_rule():
    plan = FaultPlan(link_faults=[LinkFault(drop=1.0, from_seq=2, until_seq=4)])
    decisions = [plan.decide(1, 2, seq, can_hold=True) for seq in range(5)]
    assert decisions == [DELIVER, DELIVER, DROP, DROP, DELIVER]


def test_decisions_are_order_independent_and_deterministic():
    spec = dict(
        seed=7,
        link_faults=[LinkFault(drop=0.2, reorder=0.2, duplicate=0.2)],
    )
    a, b = FaultPlan(**spec), FaultPlan(**spec)
    keys = [(1, 2, 0), (1, 2, 1), (2, 1, 0), (3, 1, 0), (1, 3, 4)]
    forward = [a.decide(s, r, q, can_hold=True) for s, r, q in keys]
    backward = [b.decide(s, r, q, can_hold=True) for s, r, q in reversed(keys)]
    assert forward == list(reversed(backward))
    assert set(forward) > {DELIVER}  # the probabilities actually fire


# -- latency / skew extra delay ---------------------------------------------

def test_extra_delay_combines_latency_rule_and_skew():
    plan = FaultPlan(
        seed=3,
        latencies=[LinkLatency(sender=1, base=0.2, jitter=0.1)],
        clock_skews={2: 0.5},
    )
    first = plan.extra_delay(1, 3, 0.0)
    assert 0.2 <= first < 0.3
    assert plan.extra_delay(2, 3, 0.0) == 0.5
    assert plan.extra_delay(3, 1, 0.0) == 0.0
    # Jitter draws key off a per-channel dispatch counter: a fresh copy
    # replays the exact same delay sequence.
    replay = plan.fresh()
    assert replay.extra_delay(1, 3, 0.0) == first


# -- canonical spec / hash / introspection ----------------------------------

def _kitchen_sink_plan() -> FaultPlan:
    return FaultPlan(
        seed=42,
        link_faults=[LinkFault(sender=1, drop=0.1, corrupt=0.05, from_seq=3)],
        partitions=[
            Partition(groups=({1, 2}, {3, 4}), from_seq=5, until_seq=20),
            Partition(blocks=((4, 1),), heal_at=30.0),
        ],
        latencies=[LinkLatency(recipient=2, base=0.1, jitter=0.05)],
        clock_skews={3: 0.25},
        process_faults=[ProcessFault(party=4, kill_after=1.5, restart=True)],
    )


def test_spec_roundtrip_preserves_hash():
    plan = _kitchen_sink_plan()
    spec = plan.spec()
    json.dumps(spec, sort_keys=True)  # the artifact form must be JSON-able
    clone = FaultPlan.from_spec(spec)
    assert clone.plan_hash() == plan.plan_hash()
    assert clone.spec() == spec
    assert clone.killed_parties() == [4]


def test_fresh_copy_is_state_free():
    plan = FaultPlan(seed=9, link_faults=[LinkFault(drop=0.5)])
    plan.decide(1, 2, 0, can_hold=True)
    plan.extra_delay(1, 2, 0.0)
    copy = plan.fresh()
    assert copy.log == [] and copy._lat_seq == {}
    assert copy.plan_hash() == plan.plan_hash()


def test_loses_messages_flags_delivery_violations_only():
    assert not FaultPlan(link_faults=[LinkFault(duplicate=0.5, reorder=0.5)],
                         latencies=[LinkLatency(base=1.0)],
                         clock_skews={1: 2.0}).loses_messages()
    assert FaultPlan(link_faults=[LinkFault(drop=0.01)]).loses_messages()
    assert FaultPlan(link_faults=[LinkFault(corrupt=0.01)]).loses_messages()
    assert FaultPlan(partitions=[Partition(groups=({1}, {2}))]).loses_messages()


def test_breaks_synchrony_flags_latency_and_skew_only():
    assert not FaultPlan(
        link_faults=[LinkFault(duplicate=0.5, reorder=0.5, drop=0.2)],
        partitions=[Partition(groups=({1}, {2}))],
    ).breaks_synchrony()
    assert FaultPlan(latencies=[LinkLatency(base=0.1)]).breaks_synchrony()
    assert FaultPlan(latencies=[LinkLatency(jitter=0.1)]).breaks_synchrony()
    assert FaultPlan(clock_skews={1: 0.5}).breaks_synchrony()
    assert not FaultPlan(latencies=[LinkLatency()],
                         clock_skews={1: 0.0}).breaks_synchrony()


def test_sample_plan_is_seed_deterministic():
    assert sample_plan(7, 4).plan_hash() == sample_plan(7, 4).plan_hash()
    assert sample_plan(7, 4).plan_hash() != sample_plan(8, 4).plan_hash()
    for seed in range(10):
        plan = sample_plan(seed, 4, max_kills=2)
        assert len(plan.killed_parties()) <= 2
        assert all(1 <= pid <= 4 for pid in plan.killed_parties())


# -- cross-transport replay equivalence --------------------------------------

def _scripted_messages():
    """A fixed interleaved stream over every channel of a 3-party roster."""
    pairs = [(1, 2), (2, 1), (1, 3), (3, 1), (2, 3), (3, 2)]
    return [
        Message(s, r, "chaos", (s, r, seq), 0.0)
        for seq in range(10)
        for (s, r) in pairs
    ]


def _partition_plan() -> FaultPlan:
    return FaultPlan(
        seed=5,
        partitions=[Partition(groups=({3}, {1, 2}), from_seq=2, until_seq=6)],
        link_faults=[LinkFault(sender=1, recipient=2, drop=0.4)],
    )


def _drain_payloads(transport, pid):
    queue = transport.inbox(pid)
    out = []
    while not queue.empty():
        message, _handled = queue.get_nowait()
        out.append(message.payload)
    return out


@pytest.mark.tcp
def test_partition_plan_replays_identically_across_transports():
    """Same plan + same per-channel message sequence => same decisions and
    the same delivered set, whether frames cross an asyncio.Queue or a real
    localhost socket.  Seq-windowed partitions are exact on both, so the
    heal point lands on the identical message."""
    in_plan = _partition_plan()
    in_process = InProcessTransport(faults=in_plan)
    in_process.open([1, 2, 3])
    for message in _scripted_messages():
        in_process.deliver(message)
    in_got = {pid: _drain_payloads(in_process, pid) for pid in (1, 2, 3)}

    tcp_plan = _partition_plan()

    async def over_tcp():
        transport = TcpTransport(faults=tcp_plan)
        await transport.open([1, 2, 3])
        for message in _scripted_messages():
            transport.deliver(message)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 60.0
        while not transport.quiescent():
            assert loop.time() < deadline, "TCP deliveries did not settle"
            await asyncio.sleep(0.01)
        got = {pid: _drain_payloads(transport, pid) for pid in (1, 2, 3)}
        transport.close()
        return got

    tcp_got = asyncio.run(over_tcp())

    assert sorted(in_plan.log) == sorted(tcp_plan.log)
    for pid in (1, 2, 3):
        # Socket interleaving across channels is arbitrary; per-channel
        # order is preserved, so compare the delivered multisets.
        assert sorted(tcp_got[pid]) == sorted(in_got[pid])
    # The partition blocked exactly seqs [2, 6) across the cut -- on both.
    to_isolated = {payload for payload in in_got[3] if payload[0] in (1, 2)}
    assert {p[2] for p in to_isolated} == {0, 1, 6, 7, 8, 9}
    # And the drop schedule on 1->2 actually fired somewhere.
    assert any(cause == DROP and (s, r) == (1, 2)
               for cause, s, r, _ in in_plan.log)


@pytest.mark.tcp
def test_fault_plan_replays_identically_over_tcp_acast():
    """End-to-end cross-transport determinism on a live protocol: the same
    seeded delivery-preserving plan faults exactly the same messages under
    the virtual-clock in-process run and the real-socket run."""
    from test_tcp import run_acast_on

    in_plan = FaultPlan(seed=11,
                        link_faults=[LinkFault(duplicate=0.15, reorder=0.15)])
    tcp_plan = in_plan.fresh()
    run_a = run_acast_on("asyncio", transport=InProcessTransport(faults=in_plan))
    run_b = run_acast_on("asyncio", clock="real", time_scale=0.001,
                         transport=TcpTransport(faults=tcp_plan))
    assert run_a.honest_outputs() == run_b.honest_outputs()
    # Hash-keyed decisions are a pure function of (seed, channel, seq), so
    # every message both runs sent was faulted identically.  The run *ends*
    # as soon as every party outputs, so a handful of sends racing
    # termination can exist in one run only -- the per-message decisions,
    # not the send count, are the determinism contract (the scripted-stream
    # test above pins exact log equality).
    a = {(s, r, q): cause for cause, s, r, q in in_plan.log}
    b = {(s, r, q): cause for cause, s, r, q in tcp_plan.log}
    common = a.keys() & b.keys()
    assert len(common) >= 0.9 * max(len(a), len(b))
    assert {k: a[k] for k in common} == {k: b[k] for k in common}
    assert any(a[key] != DELIVER for key in common)


# -- campaigns vs the guarantee table ----------------------------------------

@pytest.mark.chaos
def test_run_case_benign_plan_completes_with_reference_outputs():
    plan = FaultPlan(seed=1,
                     link_faults=[LinkFault(duplicate=0.1, reorder=0.1)])
    record = run_case(plan, n=4, ts=1, ta=0)
    assert record["outcome"] == OK
    assert record["completed"] and not record["loses_messages"]
    assert record["decisions"] > 0


@pytest.mark.chaos
def test_run_case_tolerates_within_threshold_crash():
    plan = FaultPlan(
        seed=3,
        process_faults=[ProcessFault(party=4, restart=False, sim_time=5.0)],
    )
    record = run_case(plan, n=4, ts=1, ta=0)
    assert record["outcome"] == OK
    assert record["killed"] == [4]


@pytest.mark.chaos
def test_run_case_over_threshold_kills_raise_typed_abort():
    plan = FaultPlan(
        seed=4,
        process_faults=[
            ProcessFault(party=3, restart=False, sim_time=0.0),
            ProcessFault(party=4, restart=False, sim_time=0.0),
        ],
    )
    with pytest.raises(ThresholdExceededAbort) as excinfo:
        run_case(plan, n=4, ts=1, ta=0)
    assert excinfo.value.killed == [3, 4]
    assert excinfo.value.threshold == 1
    assert "safety still held" in str(excinfo.value)


@pytest.mark.chaos
def test_run_case_latency_with_kill_degrades_to_async_threshold():
    """Found by the campaign itself (sampled seed 6): injected latency
    stretches deliveries past the sync Delta, the deadline-driven SBAs
    lawfully output bottom, and the run leans on the asynchronous fallback
    paths -- where the liveness threshold is t_a, not t_s.  One kill with
    t_a=0 is therefore a typed over-threshold abort (no liveness promise),
    not a liveness violation."""
    plan = sample_plan(6, 4)
    assert plan.breaks_synchrony() and not plan.loses_messages()
    assert plan.killed_parties() == [1]
    with pytest.raises(ThresholdExceededAbort) as excinfo:
        run_case(plan, n=4, ts=1, ta=0)
    assert excinfo.value.killed == [1]
    assert excinfo.value.threshold == 0  # t_a governs once synchrony breaks


def test_artifact_dump_and_repro_command(tmp_path):
    plan = _kitchen_sink_plan()
    plan.decide(1, 2, 0, can_hold=True)
    case = {"plan_seed": 42, "n": 4, "ts": 1, "ta": 0, "synchronous": True}
    path = dump_artifact(plan, case, "outputs diverged", str(tmp_path))
    assert os.path.basename(path) == f"plan-{plan.plan_hash()}-seed42.json"
    with open(path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    assert artifact["error"] == "outputs diverged"
    assert artifact["case"] == case
    assert FaultPlan.from_spec(artifact["spec"]).plan_hash() == plan.plan_hash()
    assert artifact["decision_log"] == [list(row) for row in plan.log]
    assert path in repro_command(path)
    assert repro_command(path).startswith("PYTHONPATH=src python -m")


@pytest.mark.chaos
def test_campaign_cli_replays_an_artifact(tmp_path, capsys):
    plan = FaultPlan(seed=6, link_faults=[LinkFault(duplicate=0.1)])
    case = {"n": 4, "ts": 1, "ta": 0, "synchronous": True}
    path = dump_artifact(plan, case, "synthetic failure", str(tmp_path))
    assert campaign_main(["--replay", path]) == 0
    replay = json.loads(capsys.readouterr().out)
    assert replay["replayed"] == "synthetic failure"
    assert replay["record"]["outcome"] == OK


@pytest.mark.chaos
def test_benign_campaign_asserts_liveness():
    records = run_campaign(2, n=4, ts=1, ta=0, base_seed=20,
                           include_loss=False, include_kills=False)
    assert len(records) == 2
    assert all(record["outcome"] == OK for record in records)


@pytest.mark.tier2
@pytest.mark.chaos(timeout=1800)
def test_tier2_chaos_campaign_soak():
    """A dozen sampled plans with loss and kills enabled: every case must
    land in the guarantee table (completing with reference outputs, an
    allowed stall under message loss, or a typed over-threshold abort) --
    any violation dumps an artifact and raises ChaosCampaignFailure."""
    records = run_campaign(12, n=4, ts=1, ta=0, base_seed=100,
                           include_loss=True, include_kills=True)
    assert len(records) == 12
    outcomes = {record["outcome"] for record in records}
    assert outcomes <= {OK, STALLED_ALLOWED, THRESHOLD_ABORT}
    assert OK in outcomes
