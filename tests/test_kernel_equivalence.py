"""Accelerated-kernel vs int-kernel equivalence: the exact-twin contract.

The pluggable numerical kernel backends (:mod:`repro.field.kernels`) must be
*exact*: for identical inputs, the ``"numpy"`` uint64 limb-split backend,
the ``"gmpy2"`` GMP backend (when installed), and the ``"int"`` pure-Python
reference return identical residues through every FieldArray op and every
cached-matrix path, including edge residues (0, 1, p-1) and unreduced
inputs (values >= p).  On top of the property-based checks, one
scenario-matrix diagonal cell runs end to end under every installed kernel
and must produce bit-identical outputs and transcripts -- switching kernels
can never change what a protocol says, only how fast it says it.

The whole module is skipped when numpy is not importable (the int kernel is
then the only backend and equivalence is vacuous); the gmpy2 column joins
:data:`ACCELERATED_KERNELS` automatically when gmpy2 imports, and
``tests/test_gmpy2_kernel.py`` covers the gmpy2 op layer via an injected
stand-in module even where gmpy2 is absent.
"""

import random
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.oec import BatchOnlineErrorCorrector
from repro.codes.reed_solomon import rs_decode, rs_decode_batch
from repro.field import GF, FieldElement, default_field
from repro.field.array import (
    FieldArray,
    batch_evaluate,
    batch_interpolate,
    batch_interpolate_at,
    batch_inverse,
)
from repro.field.bivariate import BatchSymmetricBivariate
from repro.field.kernels import (
    DISPATCH_THRESHOLDS,
    available_kernel_backends,
    gmpy2_available,
    kernel_name,
    numpy_available,
    set_kernel_backend,
)
from repro.field.polynomial import Polynomial
from repro.sharing.shamir import (
    batch_reconstruct,
    batch_robust_reconstruct,
    batch_share,
)

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy kernel unavailable"
)

F = default_field()
P = F.modulus

#: Edge residues every value strategy mixes in: zero, one, p-1, and
#: unreduced representatives (p, p+1, 2p-1, a 63-bit value).
EDGE_VALUES = [0, 1, P - 1, P - 2, P, P + 1, 2 * P - 1, (1 << 63) - 7]

#: Sizes straddling every runtime-dispatch crossover, so both the delegated
#: small-input paths and the vectorized large-input paths are exercised.
SIZES = [1, 3, DISPATCH_THRESHOLDS["elementwise"] - 1,
         DISPATCH_THRESHOLDS["elementwise"] + 13, 400]


#: Every installed accelerated backend; the equivalence properties run
#: against all of them (numpy always under the module skipif; gmpy2 joins
#: automatically when importable -- its sub-64-bit dispatch at the default
#: field must be just as invisible as the numpy limb paths).
ACCELERATED_KERNELS = [
    name for name in ("numpy", "gmpy2") if name in available_kernel_backends()
]


@contextmanager
def kernel(name):
    previous = set_kernel_backend(name)
    try:
        yield
    finally:
        set_kernel_backend(previous)


def both_kernels(fn):
    """Run ``fn`` under the int kernel and every installed accelerated
    kernel; all results must match the int reference.  Returns
    ``(reference, fast)`` for the call sites' own follow-up asserts."""
    with kernel("int"):
        reference = fn()
    fast = reference
    for name in ACCELERATED_KERNELS:
        with kernel(name):
            fast = fn()
        assert fast == reference, f"kernel {name!r} diverges from int"
    return reference, fast


def _values(seed: int, size: int, lo: int = 0):
    rng = random.Random(seed)
    out = [rng.randrange(lo, P) for _ in range(size)]
    # Sprinkle edge residues at deterministic positions (lo=1 asks for
    # nonzero residues, so skip edges that are 0 mod p there).
    for offset, edge in enumerate(EDGE_VALUES):
        if edge % P >= lo and size > 0:
            out[(seed + offset) % size] = edge
    return out


# -- FieldArray element-wise ops -----------------------------------------------


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31), size=st.sampled_from(SIZES),
       scalar=st.sampled_from(EDGE_VALUES + [12345]))
def test_property_elementwise_ops_match_across_kernels(seed, size, scalar):
    a_vals = _values(seed, size)
    b_vals = _values(seed + 1, size)

    def compute():
        a = FieldArray(F, a_vals)
        b = FieldArray(F, b_vals)
        return [
            (a + b).values, (a - b).values, (b - a).values, (a * b).values,
            (-a).values, (a + scalar).values, (scalar - a).values,
            (a * scalar).values, int(a.dot(b)), int(a.sum()),
        ]

    reference, fast = both_kernels(compute)
    assert reference == fast
    expected = [(x + y) % P for x, y in zip(a_vals, b_vals)]
    assert fast[0] == expected  # spot-check against scalar semantics


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31), size=st.sampled_from(SIZES))
def test_property_inverse_and_division_match_across_kernels(seed, size):
    a_vals = _values(seed, size, lo=1)
    b_vals = _values(seed + 1, size, lo=1)

    def compute():
        a = FieldArray(F, a_vals)
        b = FieldArray(F, b_vals)
        return [a.inverse().values, (a / b).values, batch_inverse(F, a_vals)]

    reference, fast = both_kernels(compute)
    assert reference == fast
    for v, inv in zip(a_vals, fast[0]):
        assert (v % P) * inv % P == 1


@pytest.mark.parametrize("size", SIZES)
def test_inverse_rejects_zero_under_both_kernels(size):
    values = [1] * size
    values[size // 2] = 0
    for name in ("int", "numpy"):
        with kernel(name):
            with pytest.raises(ZeroDivisionError):
                batch_inverse(F, values)
            with pytest.raises(ZeroDivisionError):
                FieldArray(F, values).inverse()


def test_small_field_ops_match_across_kernels():
    """p = 257 takes the numpy kernel's direct small-modulus paths."""
    small = GF(257)
    rng = random.Random(5)
    a_vals = [rng.randrange(257) for _ in range(300)]
    b_vals = [rng.randrange(1, 257) for _ in range(300)]

    def compute():
        a = FieldArray(small, a_vals)
        b = FieldArray(small, b_vals)
        return [(a + b).values, (a * b).values, (a - b).values,
                (a / b).values, int(a.dot(b))]

    reference, fast = both_kernels(compute)
    assert reference == fast


def test_unsupported_modulus_delegates_to_int_kernel():
    """A large non-Mersenne prime must still compute correctly (delegated)."""
    odd = GF((1 << 61) + 183, check_prime=False)  # not the optimized prime
    rng = random.Random(6)
    a_vals = [rng.randrange(odd.modulus) for _ in range(200)]

    def compute():
        a = FieldArray(odd, a_vals)
        return [(a * a).values, (a + 17).values]

    reference, fast = both_kernels(compute)
    assert reference == fast
    assert fast[0] == [v * v % odd.modulus for v in a_vals]


# -- cached-matrix paths -------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31), degree=st.integers(0, 8),
       count=st.sampled_from([1, 4, 40, 200]))
def test_property_interpolation_paths_match_across_kernels(seed, degree, count):
    rng = random.Random(seed)
    xs = list(range(1, degree + 2))
    rows = [[rng.randrange(P) for _ in xs] for _ in range(count)]
    for offset, edge in enumerate(EDGE_VALUES):
        rows[offset % count][(seed + offset) % len(xs)] = edge
    targets = list(range(30, 30 + degree + 3))

    def compute():
        return [
            batch_interpolate(F, xs, rows),
            batch_interpolate_at(F, xs, rows, 12345),
            batch_evaluate(F, rows, targets),
        ]

    reference, fast = both_kernels(compute)
    assert reference == fast
    # Anchor one row against the boxed Polynomial reference.
    poly = Polynomial(F, [F(c) for c in fast[0][0]])
    assert int(poly.evaluate(F(12345))) == fast[1][0]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31), degree=st.integers(0, 4),
       faults=st.integers(0, 3), count=st.sampled_from([1, 8, 64]))
def test_property_rs_decode_batch_matches_across_kernels(seed, degree, faults, count):
    rng = random.Random(seed)
    n_points = degree + 2 * faults + 1 + rng.randrange(3)
    xs = list(range(1, n_points + 1))
    rows = []
    for _ in range(count):
        poly = Polynomial.random(F, degree, rng=rng)
        row = [int(poly.evaluate(x)) for x in xs]
        for position in rng.sample(range(n_points), min(faults, n_points)):
            row[position] = (row[position] + rng.randrange(1, 100)) % P
        rows.append(row)

    def compute():
        return rs_decode_batch(F, xs, rows, degree, faults)

    reference, fast = both_kernels(compute)
    assert reference == fast
    for row, decoded in zip(rows, fast):
        assert decoded == rs_decode(F, list(zip(xs, row)), degree, faults)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31), degree=st.integers(0, 4),
       count=st.sampled_from([1, 16, 128]))
def test_property_shamir_batch_paths_match_across_kernels(seed, degree, count):
    n = 2 * degree + 3
    secrets = _values(seed, count)

    def compute():
        rng = random.Random(seed + 1)
        shares = batch_share(F, secrets, degree, n, rng=rng)
        plain = batch_reconstruct(F, shares, degree)
        corrupted = dict(shares)
        corrupted[n] = shares[n] + 1
        robust = batch_robust_reconstruct(F, corrupted, degree, degree + 1)
        return [
            {i: vector.values for i, vector in shares.items()},
            plain.values,
            robust.values,
        ]

    reference, fast = both_kernels(compute)
    assert reference == fast
    assert fast[1] == [s % P for s in secrets]
    assert fast[2] == [s % P for s in secrets]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31), degree=st.integers(1, 6),
       n=st.sampled_from([4, 16, 33]))
def test_property_bivariate_paths_match_across_kernels(seed, degree, n):
    coeffs = [[0] * (degree + 1) for _ in range(degree + 1)]
    rng = random.Random(seed)
    for i in range(degree + 1):
        for j in range(i, degree + 1):
            value = rng.randrange(P)
            coeffs[i][j] = value
            coeffs[j][i] = value
    coeffs[0][0] = EDGE_VALUES[seed % len(EDGE_VALUES)] % P
    n = max(n, degree + 2)  # from_univariate_rows needs degree+1 rows
    alphas = list(range(1, n + 1))

    def compute():
        biv = BatchSymmetricBivariate(F, coeffs, _normalized=True)
        rows = biv.rows_at_all_points(alphas)
        grid = biv.eval_grid(alphas, alphas)
        rebuilt = BatchSymmetricBivariate.from_univariate_rows(
            F, [(F.alpha(i), rows[i - 1]) for i in alphas[: degree + 1]]
        )
        return [[int(c) for c in row.coeffs] for row in rows], grid, rebuilt.coeffs

    reference, fast = both_kernels(compute)
    assert reference == fast
    # The grid must be symmetric and match direct evaluation at one point.
    biv = BatchSymmetricBivariate(F, coeffs, _normalized=True)
    assert fast[1][0][n - 1] == fast[1][n - 1][0] == int(biv.evaluate(1, n))
    assert fast[2] == coeffs


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31), count=st.sampled_from([4, 64, 300]))
def test_property_batch_oec_matches_across_kernels(seed, count):
    n, degree, faults = 16, 5, 5
    secrets = _values(seed, count)

    def compute():
        rng = random.Random(seed + 2)
        shares = batch_share(F, secrets, degree, n, rng=rng)
        for party in range(n - faults + 1, n + 1):
            shares[party] = shares[party] + 3
        corrector = BatchOnlineErrorCorrector(F, count, degree, faults)
        for i in range(1, n + 1):
            corrector.add_row(F.alpha(i), shares[i])
        assert corrector.done
        return [int(v) for v in corrector.secrets()]

    reference, fast = both_kernels(compute)
    assert reference == fast == [s % P for s in secrets]


def test_batch_oec_with_gaps_matches_across_kernels():
    """None entries (per-value gaps) must take the grouped scan identically."""
    n, degree, faults, count = 9, 2, 2, 6
    secrets = list(range(1, count + 1))

    def compute():
        rng = random.Random(11)
        shares = batch_share(F, secrets, degree, n, rng=rng)
        corrector = BatchOnlineErrorCorrector(F, count, degree, faults)
        for i in range(1, n + 1):
            row = [int(v) for v in shares[i].values]
            if i % 3 == 0:
                row[i % count] = None  # this sender skips one value
            corrector.add_row(F.alpha(i), row)
        assert corrector.done
        return [int(v) for v in corrector.secrets()]

    reference, fast = both_kernels(compute)
    assert reference == fast == secrets


# -- broadcast payload packing -------------------------------------------------


def test_packed_field_vector_normalization_matches_across_kernels():
    from repro.broadcast.acast import PackedFieldVector

    raw = _values(3, 500) + [-5, -1, 10 * P + 3]

    def compute():
        packed = PackedFieldVector(F, raw)
        return [packed.values, hash(packed)]

    reference, fast = both_kernels(compute)
    assert reference == fast
    assert all(isinstance(v, int) and 0 <= v < P for v in fast[0])


# -- the registry itself -------------------------------------------------------


def test_kernel_registry_roundtrip():
    available = set(available_kernel_backends())
    assert {"int", "numpy"} <= available
    assert ("gmpy2" in available) == gmpy2_available()
    original = kernel_name()
    previous = set_kernel_backend("int")
    try:
        assert previous == original
        assert kernel_name() == "int"
        assert set_kernel_backend("numpy") == "int"
        assert kernel_name() == "numpy"
        if gmpy2_available():
            assert set_kernel_backend("gmpy2") == "numpy"
            assert kernel_name() == "gmpy2"
        else:
            with pytest.raises(ValueError):
                set_kernel_backend("gmpy2")
        with pytest.raises(ValueError):
            set_kernel_backend("cupy")
    finally:
        set_kernel_backend(original)
    assert kernel_name() == original


def test_field_arrays_survive_kernel_switch():
    """Arrays built under one kernel stay exact when used under the other."""
    with kernel("numpy"):
        a = FieldArray(F, _values(7, 300))
        b = FieldArray(F, _values(8, 300))
        product_np = a * b
    with kernel("int"):
        product_int = a * b
        assert product_int.values == product_np.values
        assert all(isinstance(v, int) for v in product_int.values)
    assert int(product_np[0]) == a.values[0] * b.values[0] % P


# -- one scenario-matrix cell, bit-identical across kernels --------------------


def test_scenario_diagonal_cell_bit_identical_across_kernels():
    """ΠPreProcessing (n=4, sync, honest): same outputs and transcript under
    every installed kernel backend -- the end-to-end exact-twin acceptance."""
    from test_scenario_matrix import (
        Scenario,
        canonical_outputs,
        run_preprocessing,
        transcript_fingerprint,
    )

    scenario = Scenario(4, 1, 0, "honest", "sync", None)
    with kernel("int"):
        reference = run_preprocessing(scenario, batch=True)
    assert len(canonical_outputs(reference)) == scenario.n
    for name in ACCELERATED_KERNELS:
        with kernel(name):
            fast = run_preprocessing(scenario, batch=True)
        assert canonical_outputs(fast) == canonical_outputs(reference), name
        assert transcript_fingerprint(fast) == transcript_fingerprint(
            reference
        ), name


@pytest.mark.skipif(not gmpy2_available(), reason="gmpy2 kernel unavailable")
def test_scenario_diagonal_cell_bit_identical_under_gmpy2():
    """The same ΠPreProcessing cell pinned to the gmpy2 backend, so CI on a
    gmpy2-equipped machine shows the third-kernel cell explicitly (and a
    machine without gmpy2 shows a clean skip instead of silence)."""
    from test_scenario_matrix import (
        Scenario,
        canonical_outputs,
        run_preprocessing,
        transcript_fingerprint,
    )

    scenario = Scenario(4, 1, 0, "honest", "sync", None)
    with kernel("int"):
        reference = run_preprocessing(scenario, batch=True)
    with kernel("gmpy2"):
        fast = run_preprocessing(scenario, batch=True)
    assert canonical_outputs(fast) == canonical_outputs(reference)
    assert transcript_fingerprint(fast) == transcript_fingerprint(reference)


# -- the HIM offline pipeline across kernels -----------------------------------


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    inputs=st.integers(2, 8),
    count=st.integers(1, 40),
)
def test_property_mat_vecs_matches_across_kernels(seed, inputs, count):
    """The HIM extraction product (mat_vecs against a cached him_matrix)
    must be exact under both kernels, above and below the matmul dispatch
    threshold and with unreduced edge residues mixed in."""
    from repro.field.array import him_matrix

    rng = random.Random(seed)
    outputs = rng.randint(1, inputs)
    vectors = [
        [rng.choice(EDGE_VALUES + [rng.randrange(P)]) for _ in range(count)]
        for _ in range(inputs)
    ]

    def compute():
        from repro.field.kernels import get_kernel

        matrix = him_matrix(F, inputs, outputs)
        out = get_kernel().mat_vecs(P, matrix, [list(v) for v in vectors])
        return [[int(v) for v in row] for row in out]

    reference, fast = both_kernels(compute)
    assert reference == fast
    expected = [
        [
            sum(m * (v % P) for m, v in zip(m_row, col)) % P
            for col in zip(*vectors)
        ]
        for m_row in (him_matrix(F, inputs, outputs))
    ]
    assert fast == expected


def test_him_scenario_cell_bit_identical_across_kernels():
    """The HIM offline pipeline (n=4, sync, honest): same outputs and
    transcript under every installed kernel, like the reference mode."""
    from test_scenario_matrix import (
        Scenario,
        canonical_outputs,
        run_preprocessing,
        transcript_fingerprint,
    )

    scenario = Scenario(4, 1, 0, "honest", "sync", None, offline="him")
    with kernel("int"):
        reference = run_preprocessing(scenario, batch=True)
    assert len(canonical_outputs(reference)) == scenario.n
    for name in ACCELERATED_KERNELS:
        with kernel(name):
            fast = run_preprocessing(scenario, batch=True)
        assert canonical_outputs(fast) == canonical_outputs(reference), name
        assert transcript_fingerprint(fast) == transcript_fingerprint(
            reference
        ), name
