"""Tests for the consistency graph and the (n, t)-star algorithm."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.consistency import ConsistencyGraph
from repro.graph.star import (
    Star,
    find_clique_of_size,
    find_star,
    maximum_matching,
    verify_star,
)


def _clique_graph(n, members):
    graph = ConsistencyGraph(n)
    for a in members:
        for b in members:
            if a < b:
                graph.add_edge(a, b)
    return graph


def test_add_edge_and_degree():
    graph = ConsistencyGraph(4)
    graph.add_edge(1, 2)
    graph.add_edge(1, 2)  # idempotent
    graph.add_edge(1, 1)  # self loops ignored
    assert graph.has_edge(1, 2) and graph.has_edge(2, 1)
    assert graph.degree(1) == 1
    assert graph.neighbors(1) == {2}
    assert graph.edges() == [(1, 2)]
    assert graph.vertices() == [1, 2, 3, 4]


def test_remove_vertex_edges():
    graph = _clique_graph(4, [1, 2, 3, 4])
    graph.remove_vertex_edges(2)
    assert graph.degree(2) == 0
    assert not graph.has_edge(1, 2)
    assert graph.has_edge(1, 3)


def test_copy_and_induced_subgraph():
    graph = _clique_graph(5, [1, 2, 3])
    clone = graph.copy()
    clone.add_edge(4, 5)
    assert not graph.has_edge(4, 5)
    induced = graph.induced_subgraph({1, 2})
    assert induced.has_edge(1, 2)
    assert not induced.has_edge(1, 3)


def test_iterated_degree_prune_keeps_clique():
    # n = 4, threshold n - ts = 3; the 3-clique must survive (inclusive count).
    graph = _clique_graph(4, [1, 2, 4])
    pruned = graph.iterated_degree_prune(3)
    assert pruned == {1, 2, 4}


def test_iterated_degree_prune_removes_weak_vertices():
    graph = _clique_graph(6, [1, 2, 3, 4])
    graph.add_edge(5, 1)  # vertex 5 hangs off the clique
    pruned = graph.iterated_degree_prune(4)
    assert pruned == {1, 2, 3, 4}


def test_is_clique_and_contains_star():
    graph = _clique_graph(5, [1, 2, 3])
    assert graph.is_clique([1, 2, 3])
    assert not graph.is_clique([1, 2, 4])
    assert graph.contains_star([1, 2], [1, 2, 3])
    assert not graph.contains_star([1, 4], [1, 2, 3])


def test_degree_within():
    graph = _clique_graph(5, [1, 2, 3, 4])
    assert graph.degree_within(1, {2, 3}) == 2
    assert graph.degree_within(5, {1, 2}) == 0


def test_maximum_matching_simple():
    # Path 1-2-3: maximum matching has one edge.
    matching = maximum_matching([1, 2, 3], {(1, 2), (2, 3)})
    assert len(matching) == 1
    # Two disjoint edges.
    matching = maximum_matching([1, 2, 3, 4], {(1, 2), (3, 4)})
    assert len(matching) == 2
    assert maximum_matching([1, 2], set()) == []


def test_find_clique_of_size():
    graph = _clique_graph(6, [2, 3, 5, 6])
    assert find_clique_of_size(graph, 4) == {2, 3, 5, 6}
    assert find_clique_of_size(graph, 5) is None
    assert find_clique_of_size(graph, 0) == set()


def test_find_star_full_graph():
    n, t = 7, 2
    graph = _clique_graph(n, range(1, n + 1))
    star = find_star(graph, t)
    assert star is not None
    assert verify_star(graph, star, t)
    assert len(star.e_set) >= n - 2 * t
    assert len(star.f_set) >= n - t


def test_find_star_with_honest_clique_only():
    # Exactly n - t honest parties forming a clique; the corrupt ones silent.
    n, t = 7, 2
    graph = _clique_graph(n, [1, 2, 3, 4, 5])
    star = find_star(graph, t)
    assert star is not None
    assert verify_star(graph, star, t)
    assert star.e_set <= {1, 2, 3, 4, 5}


def test_find_star_returns_none_without_clique():
    n, t = 4, 1
    graph = ConsistencyGraph(n)
    graph.add_edge(1, 2)
    assert find_star(graph, t) is None


def test_find_star_within_subset():
    n, t = 7, 2
    graph = _clique_graph(n, [1, 2, 3, 4, 5])
    graph.add_edge(6, 1)
    star = find_star(graph, t, within={1, 2, 3, 4, 5})
    assert star is not None
    assert star.f_set <= {1, 2, 3, 4, 5}
    assert verify_star(graph, star, t, within={1, 2, 3, 4, 5})


def test_verify_star_rejects_bad_shapes():
    n, t = 4, 1
    graph = _clique_graph(n, [1, 2, 3])
    assert not verify_star(graph, Star(frozenset({1, 4}), frozenset({1, 2, 3, 4})), t)
    assert not verify_star(graph, Star(frozenset({1}), frozenset({1, 2})), t)  # F too small
    assert not verify_star(graph, Star(frozenset({1, 2}), frozenset({2})), t)  # E not subset of F
    assert not verify_star(
        graph, Star(frozenset({1, 2}), frozenset({1, 2, 3})), t, within={1, 2}
    )  # F outside the allowed subset


# -- edge cases: no-star executions, minimal stars, NOK-heavy graphs ----------------
#
# Each case runs on both the bitmask fast path and the scalar twin (the
# ``graph_mode`` fixture), asserting identical results.


@pytest.fixture(params=["batch", "scalar"])
def graph_mode(request):
    """Run the test body under the vectorized and the scalar graph paths."""
    from repro.field.array import set_batch_enabled

    previous = set_batch_enabled(request.param == "batch")
    yield request.param
    set_batch_enabled(previous)


def test_no_star_in_empty_and_near_empty_graphs(graph_mode):
    """No-star executions: empty graph, matching-only graph, star-free prune."""
    n, t = 7, 2
    empty = ConsistencyGraph(n)
    assert find_star(empty, t) is None
    assert empty.iterated_degree_prune(n - t) == set()

    # A perfect-matching-only graph (max degree 1) has no (n, t)-star either.
    sparse = ConsistencyGraph(6)
    for a, b in [(1, 2), (3, 4), (5, 6)]:
        sparse.add_edge(a, b)
    assert find_star(sparse, 1) is None
    assert sparse.iterated_degree_prune(5) == set()


def test_minimal_star_exact_thresholds(graph_mode):
    """A minimal star: |E| = n - 2t and |F| = n - t exactly, nothing spare."""
    n, t = 7, 2
    e_members = {1, 2, 3}            # n - 2t = 3
    f_members = {1, 2, 3, 4, 5}      # n - t = 5
    graph = ConsistencyGraph(n)
    for a in e_members:
        for b in f_members:
            if a != b:
                graph.add_edge(a, b)
    star = Star(frozenset(e_members), frozenset(f_members))
    assert graph.contains_star(e_members, f_members)
    assert verify_star(graph, star, t)
    # Dropping any single E-F edge destroys the star.
    broken = graph.copy()
    broken.remove_edge(1, 5)
    assert not broken.contains_star(e_members, f_members)
    assert not verify_star(broken, star, t)


def test_minimal_ts_plus_one_clique_star(graph_mode):
    """The smallest interesting case: an exact (t_s+1)-sized clique core at n=4."""
    n, t = 4, 1
    graph = _clique_graph(n, [1, 2, 3])  # n - t = 3 clique, nothing else
    star = find_star(graph, t)
    assert star is not None
    assert verify_star(graph, star, t)
    assert star.e_set <= {1, 2, 3} and len(star.e_set) >= n - 2 * t


def test_nok_heavy_graph_prune_and_star(graph_mode):
    """NOK-heavy executions: dealer pruning strips vertices, W and stars follow."""
    n, t = 7, 2
    graph = _clique_graph(n, range(1, n + 1))
    # NOK verdicts against two parties: the dealer removes their edges.
    for noisy in (6, 7):
        graph.remove_vertex_edges(noisy)
    w_set = graph.iterated_degree_prune(n - t)
    assert w_set == {1, 2, 3, 4, 5}
    # The surviving 5-clique still yields a star within W.
    star = find_star(graph, t, within=w_set)
    assert star is not None
    assert verify_star(graph, star, t, within=w_set)
    assert star.f_set <= w_set
    # One more NOK takes the graph below the n - 2t clique bound: no star.
    graph.remove_vertex_edges(5)
    graph.remove_vertex_edges(4)
    assert find_star(graph, t, within=graph.iterated_degree_prune(n - t)) is None


@settings(max_examples=30, deadline=None)
@given(n=st.integers(4, 9), seed=st.integers(0, 2 ** 31))
def test_property_vectorized_matches_scalar_twin(n, seed):
    """The bitmask fast path and the scalar twin agree on random graphs."""
    from repro.field.array import set_batch_enabled

    rng = random.Random(seed)
    t = (n - 1) // 3
    graph = ConsistencyGraph(n)
    density = rng.choice([0.15, 0.5, 0.85])
    for a, b in itertools.combinations(range(1, n + 1), 2):
        if rng.random() < density:
            graph.add_edge(a, b)
    if rng.random() < 0.4:  # NOK pruning happens in real executions
        graph.remove_vertex_edges(rng.randint(1, n))
    subset = set(rng.sample(range(1, n + 1), rng.randint(1, n)))

    previous = set_batch_enabled(True)
    try:
        batch = (
            graph.iterated_degree_prune(n - t),
            find_star(graph, t),
            graph.is_clique(subset),
            graph.contains_star(subset, set(range(1, n + 1))),
            graph.degree_within(1, subset),
        )
        set_batch_enabled(False)
        scalar = (
            graph.iterated_degree_prune(n - t),
            find_star(graph, t),
            graph.is_clique(subset),
            graph.contains_star(subset, set(range(1, n + 1))),
            graph.degree_within(1, subset),
        )
    finally:
        set_batch_enabled(previous)
    assert batch == scalar


@settings(max_examples=30, deadline=None)
@given(n=st.integers(4, 8), seed=st.integers(0, 2 ** 31))
def test_property_star_exists_when_honest_clique_exists(n, seed):
    """AlgStar's contract: a clique of size n - t guarantees an (n, t)-star."""
    t = (n - 1) // 3
    rng = random.Random(seed)
    honest = rng.sample(range(1, n + 1), n - t)
    graph = ConsistencyGraph(n)
    for a, b in itertools.combinations(honest, 2):
        graph.add_edge(a, b)
    # Random extra edges involving the "corrupt" vertices.
    others = [v for v in range(1, n + 1) if v not in honest]
    for v in others:
        for u in range(1, n + 1):
            if u != v and rng.random() < 0.5:
                graph.add_edge(u, v)
    star = find_star(graph, t)
    assert star is not None
    assert verify_star(graph, star, t)
