"""Tests for the consistency graph and the (n, t)-star algorithm."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.consistency import ConsistencyGraph
from repro.graph.star import (
    Star,
    find_clique_of_size,
    find_star,
    maximum_matching,
    verify_star,
)


def _clique_graph(n, members):
    graph = ConsistencyGraph(n)
    for a in members:
        for b in members:
            if a < b:
                graph.add_edge(a, b)
    return graph


def test_add_edge_and_degree():
    graph = ConsistencyGraph(4)
    graph.add_edge(1, 2)
    graph.add_edge(1, 2)  # idempotent
    graph.add_edge(1, 1)  # self loops ignored
    assert graph.has_edge(1, 2) and graph.has_edge(2, 1)
    assert graph.degree(1) == 1
    assert graph.neighbors(1) == {2}
    assert graph.edges() == [(1, 2)]
    assert graph.vertices() == [1, 2, 3, 4]


def test_remove_vertex_edges():
    graph = _clique_graph(4, [1, 2, 3, 4])
    graph.remove_vertex_edges(2)
    assert graph.degree(2) == 0
    assert not graph.has_edge(1, 2)
    assert graph.has_edge(1, 3)


def test_copy_and_induced_subgraph():
    graph = _clique_graph(5, [1, 2, 3])
    clone = graph.copy()
    clone.add_edge(4, 5)
    assert not graph.has_edge(4, 5)
    induced = graph.induced_subgraph({1, 2})
    assert induced.has_edge(1, 2)
    assert not induced.has_edge(1, 3)


def test_iterated_degree_prune_keeps_clique():
    # n = 4, threshold n - ts = 3; the 3-clique must survive (inclusive count).
    graph = _clique_graph(4, [1, 2, 4])
    pruned = graph.iterated_degree_prune(3)
    assert pruned == {1, 2, 4}


def test_iterated_degree_prune_removes_weak_vertices():
    graph = _clique_graph(6, [1, 2, 3, 4])
    graph.add_edge(5, 1)  # vertex 5 hangs off the clique
    pruned = graph.iterated_degree_prune(4)
    assert pruned == {1, 2, 3, 4}


def test_is_clique_and_contains_star():
    graph = _clique_graph(5, [1, 2, 3])
    assert graph.is_clique([1, 2, 3])
    assert not graph.is_clique([1, 2, 4])
    assert graph.contains_star([1, 2], [1, 2, 3])
    assert not graph.contains_star([1, 4], [1, 2, 3])


def test_degree_within():
    graph = _clique_graph(5, [1, 2, 3, 4])
    assert graph.degree_within(1, {2, 3}) == 2
    assert graph.degree_within(5, {1, 2}) == 0


def test_maximum_matching_simple():
    # Path 1-2-3: maximum matching has one edge.
    matching = maximum_matching([1, 2, 3], {(1, 2), (2, 3)})
    assert len(matching) == 1
    # Two disjoint edges.
    matching = maximum_matching([1, 2, 3, 4], {(1, 2), (3, 4)})
    assert len(matching) == 2
    assert maximum_matching([1, 2], set()) == []


def test_find_clique_of_size():
    graph = _clique_graph(6, [2, 3, 5, 6])
    assert find_clique_of_size(graph, 4) == {2, 3, 5, 6}
    assert find_clique_of_size(graph, 5) is None
    assert find_clique_of_size(graph, 0) == set()


def test_find_star_full_graph():
    n, t = 7, 2
    graph = _clique_graph(n, range(1, n + 1))
    star = find_star(graph, t)
    assert star is not None
    assert verify_star(graph, star, t)
    assert len(star.e_set) >= n - 2 * t
    assert len(star.f_set) >= n - t


def test_find_star_with_honest_clique_only():
    # Exactly n - t honest parties forming a clique; the corrupt ones silent.
    n, t = 7, 2
    graph = _clique_graph(n, [1, 2, 3, 4, 5])
    star = find_star(graph, t)
    assert star is not None
    assert verify_star(graph, star, t)
    assert star.e_set <= {1, 2, 3, 4, 5}


def test_find_star_returns_none_without_clique():
    n, t = 4, 1
    graph = ConsistencyGraph(n)
    graph.add_edge(1, 2)
    assert find_star(graph, t) is None


def test_find_star_within_subset():
    n, t = 7, 2
    graph = _clique_graph(n, [1, 2, 3, 4, 5])
    graph.add_edge(6, 1)
    star = find_star(graph, t, within={1, 2, 3, 4, 5})
    assert star is not None
    assert star.f_set <= {1, 2, 3, 4, 5}
    assert verify_star(graph, star, t, within={1, 2, 3, 4, 5})


def test_verify_star_rejects_bad_shapes():
    n, t = 4, 1
    graph = _clique_graph(n, [1, 2, 3])
    assert not verify_star(graph, Star(frozenset({1, 4}), frozenset({1, 2, 3, 4})), t)
    assert not verify_star(graph, Star(frozenset({1}), frozenset({1, 2})), t)  # F too small
    assert not verify_star(graph, Star(frozenset({1, 2}), frozenset({2})), t)  # E not subset of F
    assert not verify_star(
        graph, Star(frozenset({1, 2}), frozenset({1, 2, 3})), t, within={1, 2}
    )  # F outside the allowed subset


@settings(max_examples=30, deadline=None)
@given(n=st.integers(4, 8), seed=st.integers(0, 2 ** 31))
def test_property_star_exists_when_honest_clique_exists(n, seed):
    """AlgStar's contract: a clique of size n - t guarantees an (n, t)-star."""
    t = (n - 1) // 3
    rng = random.Random(seed)
    honest = rng.sample(range(1, n + 1), n - t)
    graph = ConsistencyGraph(n)
    for a, b in itertools.combinations(honest, 2):
        graph.add_edge(a, b)
    # Random extra edges involving the "corrupt" vertices.
    others = [v for v in range(1, n + 1) if v not in honest]
    for v in others:
        for u in range(1, n + 1):
            if u != v and rng.random() < 0.5:
                graph.add_edge(u, v)
    star = find_star(graph, t)
    assert star is not None
    assert verify_star(graph, star, t)
