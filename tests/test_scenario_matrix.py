"""The deterministic scenario-matrix harness: one regression gate for every
batch/scalar twin surface.

Sweeps (n, t_s/t_a) x adversary behaviour (honest / crash / equivocating
dealer / seeded random drop) x synchrony (sync / async fallback) x round
sharding, runs every cell once with the batched fast paths and once with the
scalar reference twins, and asserts **bit-identical outputs and unchanged
transcripts** (message counts and bit totals).  Any future fast path that
changes a single protocol message or output anywhere in the stack trips this
grid.

The full grid is `tier2` (run it with ``pytest -m tier2``); a representative
diagonal stays in tier-1 so the gate is always armed.  Every cell is seeded:
the simulator rng, the per-party rngs and the adversary's injected
``random.Random`` all derive from the cell's scenario seed, so a failure
reproduces from the printed parameters alone.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

import pytest

from repro.analysis.metrics import (
    max_message_bits,
    per_round_bits,
    sharded_triple_message_bound,
)
from repro.field import default_field
from repro.field.array import batch_enabled, set_batch_enabled
from repro.field.polynomial import interpolate_at
from repro.sim import (
    AsynchronousNetwork,
    CrashBehavior,
    EquivocatingBehavior,
    ProtocolRunner,
    RandomDropBehavior,
    SynchronousNetwork,
)
from repro.triples.him import HimExtractionAbort, him_slots
from repro.triples.preprocessing import Preprocessing, shard_bounds, triples_per_dealer

FIELD = default_field()

#: (n, ts, ta) settings satisfying 3*ts + ta < n.
PARAM_SETS = [(4, 1, 0), (5, 1, 1)]

ADVERSARIES = ["honest", "crash", "equivocating_dealer", "random_drop"]

NETWORKS = ["sync", "async"]

SHARDS = [None, 1]


@dataclass(frozen=True)
class Scenario:
    n: int
    ts: int
    ta: int
    adversary: str
    network: str
    shard_size: Optional[int]
    num_triples: int = 2
    seed: int = 0
    #: Offline pipeline under test ("tripsh" reference or "him" batch).
    offline: str = "tripsh"

    @property
    def corruptions(self) -> int:
        return 0 if self.adversary == "honest" else 1

    @property
    def expects_liveness(self) -> bool:
        """The paper's guarantee matrix.

        A synchronous network tolerates t_s corruptions, an asynchronous one
        only t_a -- beyond that the adversary may stall the execution (no
        liveness), but safety (agreement, and our batch == scalar twin
        property) must still hold.  The n=4, t_a=0 asynchronous cells with an
        active adversary are exactly the out-of-model corner: the protocol
        may not terminate there, and the harness only checks safety.
        """
        threshold = self.ts if self.network == "sync" else self.ta
        return self.corruptions <= threshold

    @property
    def scenario_seed(self) -> int:
        """One deterministic seed per grid cell (stable across processes,
        unlike builtin ``hash`` on strings)."""
        key = (self.n, self.ts, self.ta, self.adversary, self.network,
               self.shard_size or 0, self.num_triples, self.seed)
        if self.offline != "tripsh":
            # Appended only for non-default modes so every historical
            # "tripsh" cell keeps its exact seed (and hence transcript).
            key = key + (self.offline,)
        return zlib.crc32(repr(key).encode("utf-8")) & 0x7FFFFFFF

    def build_network(self):
        if self.network == "sync":
            return SynchronousNetwork()
        return AsynchronousNetwork(max_delay=3.0)

    def build_corrupt(self) -> Dict[int, object]:
        """The corrupt party is always P_n (never the observed dealer P_1)."""
        target = self.n
        if self.adversary == "honest":
            return {}
        if self.adversary == "crash":
            return {target: CrashBehavior()}
        if self.adversary == "equivocating_dealer":
            # P_n equivocates on everything it deals/sends: group B gets
            # perturbed payloads (including packed broadcast vectors).
            group_b = list(range(1, self.n // 2 + 1))
            return {target: EquivocatingBehavior(group_b=group_b, offset=3)}
        if self.adversary == "random_drop":
            # Reproducible lossy party: the rng is injected, never module-global.
            return {target: RandomDropBehavior(0.25, random.Random(self.scenario_seed))}
        if self.adversary == "bad_triple_dealer":
            # Corrupt at the protocol-input level, not the transport level:
            # P_1 follows the protocol but deals rigged triples (see
            # :func:`bad_dealer_triples`).  It must be P_1, not P_n -- a
            # synchronous ΠACS deterministically admits the first n - t_s
            # dealers, and the sacrifice check can only judge dealers whose
            # sharings made it into CS.  Only meaningful with
            # ``offline="him"``; the reference pipeline verifies each
            # dealer's triples inside ΠTripSh instead.
            return {}
        raise ValueError(self.adversary)


def bad_dealer_triples(scenario: Scenario):
    """Sacrifice-check bait: VSS-consistent slots whose candidate has c != a*b.

    The ``bad_triple_dealer`` adversary deals these through the hook instead
    of honest random triples -- the sharing itself is perfectly consistent
    (so ΠACS admits the dealer into CS), and only the HIM pipeline's
    sacrifice check can catch the corruption.
    """
    one = FIELD(1)
    slots = him_slots(scenario.n, scenario.ts, scenario.num_triples)
    return [((one, one, FIELD(2)), (one, one, one))] * slots


def run_preprocessing(scenario: Scenario, batch: bool):
    previous = set_batch_enabled(batch)
    try:
        runner = ProtocolRunner(
            scenario.n,
            network=scenario.build_network(),
            seed=scenario.scenario_seed,
            corrupt=scenario.build_corrupt(),
        )

        def factory(party):
            kwargs = {}
            if scenario.adversary == "bad_triple_dealer" and party.id == 1:
                kwargs["dealer_triples"] = bad_dealer_triples(scenario)
            return Preprocessing(
                party,
                "preproc",
                ts=scenario.ts,
                ta=scenario.ta,
                num_triples=scenario.num_triples,
                anchor=0.0,
                shard_size=scenario.shard_size,
                mode=scenario.offline,
                **kwargs,
            )

        return runner.run(factory, max_time=5_000_000.0)
    finally:
        set_batch_enabled(previous)


def canonical_outputs(result) -> Dict[int, list]:
    """Honest outputs as plain ints (bit-level comparable)."""
    return {
        pid: [(int(a), int(b), int(c)) for a, b, c in out]
        for pid, out in result.honest_outputs().items()
    }


def transcript_fingerprint(result) -> Dict[str, float]:
    metrics = result.metrics
    return {
        "messages_sent": metrics.messages_sent,
        "messages_delivered": metrics.messages_delivered,
        "honest_bits": metrics.honest_bits,
        "total_bits": metrics.total_bits,
        "max_message_bits": metrics.max_message_bits,
        "bits_by_round": tuple(sorted(metrics.bits_by_round.items())),
    }


def triples_are_valid(result, ts: int) -> bool:
    outputs = result.honest_outputs()
    if len(outputs) < ts + 1:
        # Too few shares to interpolate degree-ts polynomials: vacuously
        # valid (completion itself is asserted by the caller where the
        # model guarantees it).
        return True
    count = len(next(iter(outputs.values())))
    for index in range(count):
        points_a = [(FIELD.alpha(pid), out[index][0]) for pid, out in outputs.items()]
        points_b = [(FIELD.alpha(pid), out[index][1]) for pid, out in outputs.items()]
        points_c = [(FIELD.alpha(pid), out[index][2]) for pid, out in outputs.items()]
        a = interpolate_at(FIELD, points_a[: ts + 1], 0)
        b = interpolate_at(FIELD, points_b[: ts + 1], 0)
        c = interpolate_at(FIELD, points_c[: ts + 1], 0)
        if a * b != c:
            return False
    return True


def assert_batch_equals_scalar(scenario: Scenario) -> None:
    """The core scenario-matrix property for one grid cell.

    Batch and scalar must be bit-identical in *every* cell (the twin
    property is unconditional); completion and triple validity are asserted
    exactly where the paper guarantees them (see
    :meth:`Scenario.expects_liveness`).
    """
    assert batch_enabled(), "the process-wide default must be restored between cells"
    batched = run_preprocessing(scenario, batch=True)
    scalar = run_preprocessing(scenario, batch=False)
    assert batch_enabled()

    assert canonical_outputs(batched) == canonical_outputs(scalar), scenario
    assert transcript_fingerprint(batched) == transcript_fingerprint(scalar), scenario

    honest = scenario.n - scenario.corruptions
    if scenario.expects_liveness:
        assert len(batched.honest_outputs()) == honest, scenario
        assert triples_are_valid(batched, scenario.ts), scenario
    elif batched.honest_outputs():
        # Out-of-model cells may stall, but whatever is produced must still
        # be safe: consistent valid triples at every party that finished.
        assert triples_are_valid(batched, scenario.ts), scenario


# -- tier-1 representative diagonal -------------------------------------------------


@pytest.mark.parametrize(
    "scenario",
    [
        Scenario(4, 1, 0, "honest", "sync", None),
        Scenario(4, 1, 0, "crash", "sync", 1),
        Scenario(5, 1, 1, "equivocating_dealer", "async", None),
    ],
    ids=lambda s: f"{s.n}p-{s.adversary}-{s.network}-shard{s.shard_size}",
)
def test_scenario_diagonal(scenario):
    """Fast tier-1 subset of the matrix: the gate is always armed."""
    assert_batch_equals_scalar(scenario)


# -- the full tier2 grid ----------------------------------------------------------


@pytest.mark.tier2
@pytest.mark.parametrize("params", PARAM_SETS, ids=lambda p: f"n{p[0]}ts{p[1]}ta{p[2]}")
@pytest.mark.parametrize("adversary", ADVERSARIES)
@pytest.mark.parametrize("network", NETWORKS)
@pytest.mark.parametrize("shard_size", SHARDS, ids=lambda s: f"shard{s}")
def test_scenario_matrix(params, adversary, network, shard_size):
    n, ts, ta = params
    assert_batch_equals_scalar(Scenario(n, ts, ta, adversary, network, shard_size))


# -- the HIM offline pipeline: same grid, second mode -------------------------------


@pytest.mark.parametrize(
    "scenario",
    [
        Scenario(4, 1, 0, "honest", "sync", None, offline="him"),
        Scenario(4, 1, 0, "crash", "sync", 1, offline="him"),
        Scenario(5, 1, 1, "equivocating_dealer", "async", None, offline="him"),
    ],
    ids=lambda s: f"him-{s.n}p-{s.adversary}-{s.network}-shard{s.shard_size}",
)
def test_him_scenario_diagonal(scenario):
    """Tier-1 diagonal for ``offline="him"``: the batch/scalar twin gate is
    armed for the HIM pipeline exactly like for the reference pipeline."""
    assert_batch_equals_scalar(scenario)


@pytest.mark.tier2
@pytest.mark.parametrize("params", PARAM_SETS, ids=lambda p: f"n{p[0]}ts{p[1]}ta{p[2]}")
@pytest.mark.parametrize("adversary", ADVERSARIES)
@pytest.mark.parametrize("network", NETWORKS)
@pytest.mark.parametrize("shard_size", SHARDS, ids=lambda s: f"shard{s}")
def test_him_scenario_matrix(params, adversary, network, shard_size):
    n, ts, ta = params
    assert_batch_equals_scalar(
        Scenario(n, ts, ta, adversary, network, shard_size, offline="him")
    )


def test_him_bad_dealer_is_discarded_and_extraction_continues():
    """n=5: the sacrifice check publicly catches the rigged dealer; the
    survivors (2t_s+1 of them) still extract the full triple budget, and the
    batch/scalar twins agree on every bit of it."""
    scenario = Scenario(5, 1, 1, "bad_triple_dealer", "sync", None, offline="him")
    batched = run_preprocessing(scenario, batch=True)
    scalar = run_preprocessing(scenario, batch=False)

    outputs = batched.honest_outputs()
    assert len(outputs) == 5  # P_1 is protocol-honest, only its triples are rigged
    assert triples_are_valid(batched, scenario.ts)
    for instance in batched.instances.values():
        assert instance.discarded_dealers == [1]
    assert canonical_outputs(batched) == canonical_outputs(scalar)
    assert transcript_fingerprint(batched) == transcript_fingerprint(scalar)


@pytest.mark.parametrize("batch", [True, False], ids=["batch", "scalar"])
def test_him_bad_dealer_aborts_loudly_below_survivor_threshold(batch):
    """n=4: discarding the rigged dealer leaves 2 < 2t_s+1 survivors, so the
    extraction must abort with the named exception -- never silently emit
    triples from a pool that can no longer guarantee randomness."""
    scenario = Scenario(4, 1, 0, "bad_triple_dealer", "sync", None, offline="him")
    with pytest.raises(HimExtractionAbort) as excinfo:
        run_preprocessing(scenario, batch=batch)
    assert excinfo.value.discarded == [1]
    assert len(excinfo.value.survivors) == 2


def test_him_sharded_round_payloads_are_bounded():
    """Satellite contract, HIM edition: the offline-mode-aware bound holds
    for every sharded round and really binds (the unsharded run exceeds it)."""
    scenario_sharded = Scenario(
        4, 1, 0, "honest", "sync", 1, num_triples=3, offline="him"
    )
    scenario_full = Scenario(
        4, 1, 0, "honest", "sync", None, num_triples=3, offline="him"
    )
    sharded = run_preprocessing(scenario_sharded, batch=True)
    unsharded = run_preprocessing(scenario_full, batch=True)

    slots = him_slots(4, 1, 3)
    assert slots >= 3  # several slots, so shard_size=1 is a real constraint
    bound = sharded_triple_message_bound(1, 1, FIELD.element_bits(), offline="him")
    full_bound = sharded_triple_message_bound(
        slots, 1, FIELD.element_bits(), offline="him"
    )

    assert max_message_bits(sharded.metrics) <= bound
    assert max_message_bits(unsharded.metrics) > bound
    assert max_message_bits(unsharded.metrics) <= full_bound
    assert sharded.metrics.max_message_bits_by_round
    assert all(
        heaviest <= bound
        for heaviest in sharded.metrics.max_message_bits_by_round.values()
    )

    # Sharding must not change what is produced: same triple count, still valid.
    assert triples_are_valid(sharded, 1) and triples_are_valid(unsharded, 1)
    counts = {len(out) for out in sharded.honest_outputs().values()}
    assert counts == {len(next(iter(unsharded.honest_outputs().values())))}


# -- sharding-specific contracts ----------------------------------------------------


def test_sharded_round_payloads_are_bounded():
    """No protocol round carries more than a shard_size-bounded triple payload."""
    scenario_sharded = Scenario(4, 1, 0, "honest", "sync", 1, num_triples=3)
    scenario_full = Scenario(4, 1, 0, "honest", "sync", None, num_triples=3)
    sharded = run_preprocessing(scenario_sharded, batch=True)
    unsharded = run_preprocessing(scenario_full, batch=True)

    per_dealer = triples_per_dealer(4, 1, 3)
    assert per_dealer >= 3  # the bound is only meaningful for a real bank
    bound = sharded_triple_message_bound(1, 1, FIELD.element_bits())
    full_bound = sharded_triple_message_bound(per_dealer, 1, FIELD.element_bits())

    # The sharded run's heaviest message is bounded by the shard, not by L...
    assert max_message_bits(sharded.metrics) <= bound
    # ...and the bound really binds: the unsharded run exceeds it (while
    # respecting its own L-sized bound).
    assert max_message_bits(unsharded.metrics) > bound
    assert max_message_bits(unsharded.metrics) <= full_bound

    # Round-level accounting: *no* protocol round of the sharded run carries
    # a message above the shard bound (the acceptance criterion verbatim),
    # while the unsharded run has at least one round that does.
    assert sharded.metrics.max_message_bits_by_round
    assert all(
        heaviest <= bound
        for heaviest in sharded.metrics.max_message_bits_by_round.values()
    )
    assert any(
        heaviest > bound
        for heaviest in unsharded.metrics.max_message_bits_by_round.values()
    )
    assert sum(per_round_bits(sharded.metrics).values()) == sharded.metrics.total_bits
    # Grid-aligned staggering: sharding must not make any single round
    # heavier in total than the unsharded execution's heaviest round.
    from repro.analysis.metrics import max_round_bits

    assert max_round_bits(sharded.metrics) <= max_round_bits(unsharded.metrics)

    # Sharding must not change what is produced: same triple count, still valid.
    assert triples_are_valid(sharded, 1) and triples_are_valid(unsharded, 1)
    counts = {len(out) for out in sharded.honest_outputs().values()}
    assert counts == {len(next(iter(unsharded.honest_outputs().values())))}


def test_shard_bounds_partition():
    assert shard_bounds(5, None) == [(0, 5)]
    assert shard_bounds(5, 2) == [(0, 2), (2, 4), (4, 5)]
    assert shard_bounds(1, 4) == [(0, 1)]
    with pytest.raises(ValueError):
        shard_bounds(3, 0)


def test_run_mpc_sharded_outputs_match_unsharded():
    """The shard_size knob is output-invariant end to end through run_mpc."""
    from repro.circuits import millionaires_product_circuit
    from repro.mpc import run_mpc

    circuit = millionaires_product_circuit(FIELD, 4)
    inputs = {1: 3, 2: 5, 3: 7, 4: 11}
    expected = circuit.evaluate({pid: FIELD(v) for pid, v in inputs.items()})
    unsharded = run_mpc(circuit, inputs, n=4, ts=1, ta=0, seed=9)
    sharded = run_mpc(circuit, inputs, n=4, ts=1, ta=0, seed=9, shard_size=1)
    assert unsharded.completed and sharded.completed
    assert unsharded.outputs == sharded.outputs == expected
    assert sharded.metrics.max_message_bits < unsharded.metrics.max_message_bits


def test_random_drop_behavior_is_reproducible_from_seed():
    """Satellite contract: adversarial draws come from the injected rng only."""
    scenario = Scenario(4, 1, 0, "random_drop", "sync", None)
    first = run_preprocessing(scenario, batch=True)
    second = run_preprocessing(scenario, batch=True)
    assert canonical_outputs(first) == canonical_outputs(second)
    assert transcript_fingerprint(first) == transcript_fingerprint(second)
