"""Tests for the triple-generation building blocks that operate on existing
sharings: public reconstruction, ΠBeaver, ΠTripTrans and ΠTripExt.

These tests construct t_s-sharings directly (via the Shamir helpers) and run
only the protocol under test, which keeps them fast while still exercising
the real message-passing code paths.
"""

import random

import pytest

from repro.field import default_field
from repro.field.polynomial import interpolate_at
from repro.sharing.shamir import SharedValue, share_secret
from repro.sim import ProtocolRunner, SynchronousNetwork, AsynchronousNetwork, WrongValueBehavior
from repro.triples.beaver import BeaverMultiplication
from repro.triples.extraction import TripleExtraction
from repro.triples.reconstruction import PublicReconstruction
from repro.triples.transform import TripleTransformation, extend_shares

F = default_field()


def _shared(value, degree, n, seed):
    return share_secret(F, value, degree, n, rng=random.Random(seed))


def _shared_triple(a, b, degree, n, seed):
    return (
        _shared(a, degree, n, seed),
        _shared(b, degree, n, seed + 1),
        _shared(a * b, degree, n, seed + 2),
    )


def _reconstruct(shares_by_party, degree):
    points = [(F.alpha(pid), value) for pid, value in shares_by_party.items()]
    return interpolate_at(F, points[: degree + 1], 0)


# -- PublicReconstruction -----------------------------------------------------------------------


def test_public_reconstruction_batch():
    n, ts = 4, 1
    values = [11, 22, 33]
    sharings = [_shared(v, ts, n, 10 + i) for i, v in enumerate(values)]
    runner = ProtocolRunner(n, network=SynchronousNetwork())

    def factory(party):
        return PublicReconstruction(
            party, "rec", degree=ts, faults=ts,
            shares=[s.share_of(party.id) for s in sharings],
        )

    result = runner.run(factory)
    for output in result.honest_outputs().values():
        assert [int(v) for v in output] == values


def test_public_reconstruction_tolerates_wrong_shares():
    n, ts = 4, 1
    sharing = _shared(99, ts, n, 3)
    runner = ProtocolRunner(n, network=SynchronousNetwork(),
                            corrupt={2: WrongValueBehavior(offset=5)})

    def factory(party):
        return PublicReconstruction(party, "rec", degree=ts, faults=ts,
                                    shares=[sharing.share_of(party.id)])

    result = runner.run(factory)
    for output in result.honest_outputs().values():
        assert output[0] == F(99)


def test_public_reconstruction_late_input():
    n, ts = 4, 1
    sharing = _shared(5, ts, n, 4)
    runner = ProtocolRunner(n, network=SynchronousNetwork())
    instances = {}
    for pid, party in runner.parties.items():
        instances[pid] = PublicReconstruction(party, "rec", degree=ts, faults=ts)
    for inst in instances.values():
        inst.start()
    for pid, inst in instances.items():
        runner.simulator.schedule_timer(
            1.0, lambda inst=inst, pid=pid: inst.provide_input([sharing.share_of(pid)])
        )
    runner.simulator.run(until=lambda: all(i.has_output for i in instances.values()),
                         max_time=100.0)
    assert all(inst.output[0] == F(5) for inst in instances.values())


# -- ΠBeaver ---------------------------------------------------------------------------------------


@pytest.mark.parametrize("network", [SynchronousNetwork(), AsynchronousNetwork(max_delay=3.0)])
def test_beaver_multiplication_correct(network):
    n, ts = 4, 1
    x = _shared(6, ts, n, 20)
    y = _shared(7, ts, n, 21)
    a, b, c = _shared_triple(13, 17, ts, n, 22)
    runner = ProtocolRunner(n, network=network, seed=1)

    def factory(party):
        job = (x.share_of(party.id), y.share_of(party.id),
               a.share_of(party.id), b.share_of(party.id), c.share_of(party.id))
        return BeaverMultiplication(party, "beaver", ts=ts, jobs=[job])

    result = runner.run(factory)
    shares = {pid: out[0] for pid, out in result.honest_outputs().items()}
    assert _reconstruct(shares, ts) == F(42)


def test_beaver_batch_of_multiplications():
    n, ts = 4, 1
    pairs = [(2, 3), (5, 8), (100, 0)]
    xs = [_shared(p[0], ts, n, 30 + i) for i, p in enumerate(pairs)]
    ys = [_shared(p[1], ts, n, 40 + i) for i, p in enumerate(pairs)]
    triples = [_shared_triple(7 + i, 9 + i, ts, n, 50 + 3 * i) for i in range(len(pairs))]
    runner = ProtocolRunner(n, network=SynchronousNetwork())

    def factory(party):
        jobs = []
        for i in range(len(pairs)):
            a, b, c = triples[i]
            jobs.append((xs[i].share_of(party.id), ys[i].share_of(party.id),
                         a.share_of(party.id), b.share_of(party.id), c.share_of(party.id)))
        return BeaverMultiplication(party, "beaver", ts=ts, jobs=jobs)

    result = runner.run(factory)
    for index, (px, py) in enumerate(pairs):
        shares = {pid: out[index] for pid, out in result.honest_outputs().items()}
        assert _reconstruct(shares, ts) == F(px * py)


def test_beaver_wrong_triple_gives_wrong_product():
    """z = x*y holds iff (a, b, c) is a multiplication triple (Lemma 6.1)."""
    n, ts = 4, 1
    x = _shared(3, ts, n, 60)
    y = _shared(4, ts, n, 61)
    a = _shared(5, ts, n, 62)
    b = _shared(6, ts, n, 63)
    c = _shared(31, ts, n, 64)  # 31 != 30, not a multiplication triple
    runner = ProtocolRunner(n, network=SynchronousNetwork())

    def factory(party):
        job = (x.share_of(party.id), y.share_of(party.id),
               a.share_of(party.id), b.share_of(party.id), c.share_of(party.id))
        return BeaverMultiplication(party, "beaver", ts=ts, jobs=[job])

    result = runner.run(factory)
    shares = {pid: out[0] for pid, out in result.honest_outputs().items()}
    assert _reconstruct(shares, ts) == F(13)  # 12 + (31 - 30)


# -- ΠTripTrans ---------------------------------------------------------------------------------------


def test_triple_transformation_properties():
    n, ts, d = 4, 1, 1
    input_triples = [
        (2, 3), (4, 5), (6, 7),
    ]
    sharings = [_shared_triple(a, b, ts, n, 70 + 3 * i) for i, (a, b) in enumerate(input_triples)]
    runner = ProtocolRunner(n, network=SynchronousNetwork())

    def factory(party):
        triples = [
            (a.share_of(party.id), b.share_of(party.id), c.share_of(party.id))
            for a, b, c in sharings
        ]
        return TripleTransformation(party, "trans", ts=ts, d=d, triples=triples)

    result = runner.run(factory)
    outputs = result.honest_outputs()
    # Reconstruct the transformed triples and check X, Y, Z polynomial structure.
    transformed = []
    for index in range(2 * d + 1):
        x = _reconstruct({pid: out[index][0] for pid, out in outputs.items()}, ts)
        y = _reconstruct({pid: out[index][1] for pid, out in outputs.items()}, ts)
        z = _reconstruct({pid: out[index][2] for pid, out in outputs.items()}, 2 * ts)
        transformed.append((x, y, z))
    # Every transformed triple is a multiplication triple (inputs all were).
    for x, y, z in transformed:
        assert x * y == z
    # The first d+1 triples are the original ones.
    for i in range(d + 1):
        a, b = input_triples[i]
        assert transformed[i][0] == F(a)
        assert transformed[i][1] == F(b)
    # X and Y have degree <= d through the 2d+1 points (check via interpolation).
    xs_points = [(F.alpha(i + 1), transformed[i][0]) for i in range(d + 1)]
    assert interpolate_at(F, xs_points, F.alpha(2 * d + 1)) == transformed[2 * d][0]


def test_triple_transformation_bad_input_triple_propagates():
    """(x(i), y(i), z(i)) is a multiplication triple iff the input triple is."""
    n, ts, d = 4, 1, 1
    good = _shared_triple(2, 3, ts, n, 80)
    bad = (_shared(4, ts, n, 83), _shared(5, ts, n, 84), _shared(99, ts, n, 85))
    good2 = _shared_triple(6, 7, ts, n, 86)
    sharings = [good, bad, good2]
    runner = ProtocolRunner(n, network=SynchronousNetwork())

    def factory(party):
        triples = [
            (a.share_of(party.id), b.share_of(party.id), c.share_of(party.id))
            for a, b, c in sharings
        ]
        return TripleTransformation(party, "trans", ts=ts, d=d, triples=triples)

    result = runner.run(factory)
    outputs = result.honest_outputs()
    x = _reconstruct({pid: out[1][0] for pid, out in outputs.items()}, ts)
    y = _reconstruct({pid: out[1][1] for pid, out in outputs.items()}, ts)
    z = _reconstruct({pid: out[1][2] for pid, out in outputs.items()}, 2 * ts)
    assert x * y != z


def test_triple_transformation_requires_odd_count():
    runner = ProtocolRunner(4, network=SynchronousNetwork())
    party = runner.parties[1]
    sharing = _shared_triple(1, 2, 1, 4, 90)
    triples = [(sharing[0].share_of(1), sharing[1].share_of(1), sharing[2].share_of(1))] * 2
    instance = TripleTransformation(party, "trans", ts=1, d=1, triples=triples)
    with pytest.raises(ValueError):
        instance.start()


def test_extend_shares_matches_polynomial_evaluation():
    n, ts = 4, 1
    values = [5, 9]
    sharings = [_shared(v, ts, n, 95 + i) for i, v in enumerate(values)]
    # The underlying degree-1 polynomial through (alpha_1, 5), (alpha_2, 9).
    party_shares = [sharings[i].share_of(1) for i in range(2)]
    extended = extend_shares(F, party_shares, 1, F.alpha(3))
    # Check against reconstructing the extended sharing from all parties.
    all_extended = {
        pid: extend_shares(F, [sharings[i].share_of(pid) for i in range(2)], 1, F.alpha(3))
        for pid in range(1, n + 1)
    }
    value = _reconstruct(all_extended, ts)
    expected = interpolate_at(F, [(F.alpha(1), F(5)), (F.alpha(2), F(9))], F.alpha(3))
    assert value == expected
    assert all_extended[1] == extended


# -- ΠTripExt -----------------------------------------------------------------------------------------


def test_triple_extraction_outputs_multiplication_triples():
    n, ts = 4, 1
    d = 1
    sharings = [_shared_triple(3 + i, 5 + i, ts, n, 100 + 3 * i) for i in range(2 * d + 1)]
    runner = ProtocolRunner(n, network=SynchronousNetwork())

    def factory(party):
        triples = [
            (a.share_of(party.id), b.share_of(party.id), c.share_of(party.id))
            for a, b, c in sharings
        ]
        return TripleExtraction(party, "ext", ts=ts, d=d, triples=triples)

    result = runner.run(factory)
    outputs = result.honest_outputs()
    count = d + 1 - ts
    assert all(len(out) == count for out in outputs.values())
    for index in range(count):
        a = _reconstruct({pid: out[index][0] for pid, out in outputs.items()}, ts)
        b = _reconstruct({pid: out[index][1] for pid, out in outputs.items()}, ts)
        c = _reconstruct({pid: out[index][2] for pid, out in outputs.items()}, 2 * ts)
        assert a * b == c


def test_triple_extraction_larger_committee():
    n, ts = 7, 2
    d = 2
    sharings = [_shared_triple(2 + i, 3 + i, ts, n, 120 + 3 * i) for i in range(2 * d + 1)]
    runner = ProtocolRunner(n, network=SynchronousNetwork())

    def factory(party):
        triples = [
            (a.share_of(party.id), b.share_of(party.id), c.share_of(party.id))
            for a, b, c in sharings
        ]
        return TripleExtraction(party, "ext", ts=ts, d=d, triples=triples)

    result = runner.run(factory)
    outputs = result.honest_outputs()
    for index in range(d + 1 - ts):
        a = _reconstruct({pid: out[index][0] for pid, out in outputs.items()}, ts)
        b = _reconstruct({pid: out[index][1] for pid, out in outputs.items()}, ts)
        c = _reconstruct({pid: out[index][2] for pid, out in outputs.items()}, 2 * ts)
        assert a * b == c
