"""The pluggable execution runtime: backend parity, transport faults,
reproducibility, and the protocols-never-touch-the-Simulator contract.

The acceptance bar for the runtime refactor:

* ``SimBackend`` is the historical simulator bit for bit (the scenario
  matrix in ``test_scenario_matrix.py`` runs through it unchanged).
* ``AsyncioBackend`` under the virtual clock runs the scenario-matrix
  diagonal (honest + crash, sync + async network) with honest outputs equal
  to the sim backend's -- in fact the whole transcript fingerprint matches,
  because the virtual-clock scheduler reproduces the simulator's event
  ordering and rng draw discipline exactly.
* Transport-level faults (crash-stop endpoints, duplicated and reordered
  deliveries) exercise the queue fabric without protocol changes.
* A seeded virtual-clock run replays identically.
* No protocol module imports the Simulator: protocols depend only on the
  :class:`~repro.runtime.api.PartyRuntime` context API.
"""

from __future__ import annotations

import ast
import pathlib
import random

import pytest

from repro.circuits import multiplication_circuit
from repro.field import default_field
from repro.mpc import run_mpc
from repro.runtime import (
    AsyncioBackend,
    InProcessTransport,
    SimBackend,
    TransportFaults,
    make_backend,
)
from repro.sim import SynchronousNetwork
from repro.triples.preprocessing import Preprocessing, auto_shard_size, triples_per_dealer

from test_scenario_matrix import (
    Scenario,
    canonical_outputs,
    transcript_fingerprint,
    triples_are_valid,
)

FIELD = default_field()


def run_preprocessing_on(scenario: Scenario, backend, **backend_options):
    """One scenario cell on an arbitrary backend (batch paths on)."""
    built = make_backend(
        backend,
        scenario.n,
        network=scenario.build_network(),
        seed=scenario.scenario_seed,
        corrupt=scenario.build_corrupt(),
        **backend_options,
    )
    return built.run(
        lambda party: Preprocessing(
            party,
            "preproc",
            ts=scenario.ts,
            ta=scenario.ta,
            num_triples=scenario.num_triples,
            anchor=0.0,
            shard_size=scenario.shard_size,
        ),
        max_time=5_000_000.0,
    )


#: The acceptance diagonal: honest + crash faults, in a synchronous and an
#: asynchronous network.  The crash+async cell needs the (5, 1, 1) setting
#: so one crash stays within t_a and liveness holds; the honest+async cell
#: runs at n=4 (zero corruptions are within any t_a).
DIAGONAL = [
    Scenario(4, 1, 0, "honest", "sync", None),
    Scenario(4, 1, 0, "crash", "sync", None),
    Scenario(4, 1, 0, "honest", "async", None),
    Scenario(5, 1, 1, "crash", "async", None),
]


@pytest.mark.parametrize(
    "scenario", DIAGONAL, ids=lambda s: f"{s.n}p-{s.adversary}-{s.network}"
)
def test_asyncio_backend_matches_sim_backend_on_diagonal(scenario):
    """Honest outputs (and the whole transcript) equal across backends."""
    sim = run_preprocessing_on(scenario, "sim")
    concurrent = run_preprocessing_on(scenario, "asyncio")
    assert canonical_outputs(concurrent) == canonical_outputs(sim), scenario
    assert transcript_fingerprint(concurrent) == transcript_fingerprint(sim), scenario
    assert len(sim.honest_outputs()) == scenario.n - scenario.corruptions
    assert triples_are_valid(concurrent, scenario.ts)


def test_run_mpc_backend_knob_end_to_end():
    circuit = multiplication_circuit(FIELD, 4)
    inputs = {1: 3, 2: 5, 3: 7, 4: 11}
    expected = circuit.evaluate({pid: FIELD(v) for pid, v in inputs.items()})
    sim = run_mpc(circuit, inputs, n=4, ts=1, ta=0, seed=11)
    concurrent = run_mpc(circuit, inputs, n=4, ts=1, ta=0, seed=11, backend="asyncio")
    assert sim.outputs == concurrent.outputs == expected
    assert sim.metrics.total_bits == concurrent.metrics.total_bits


def test_asyncio_real_clock_completes_correctly():
    """The wall-clock mode really runs: agreed, correct, positive elapsed time.

    Real-clock scheduling is genuinely nondeterministic, so (exactly like
    the asynchronous-network MPC tests) correctness is judged against the
    effective inputs of the agreed common subset: a party whose sharing
    lost a wall-clock race lawfully contributes the default 0.
    """
    circuit = multiplication_circuit(FIELD, 4)
    inputs = {1: 2, 2: 3, 3: 4, 4: 5}
    result = run_mpc(
        circuit, inputs, n=4, ts=1, ta=0, seed=3,
        backend="asyncio", clock="real", time_scale=0.0002,
    )
    assert result.completed and result.agreed
    included = result.common_subset or []
    effective = {pid: (inputs[pid] if pid in included else 0) for pid in inputs}
    expected = circuit.evaluate({pid: FIELD(v) for pid, v in effective.items()})
    assert result.outputs == expected
    assert all(t > 0 for t in result.output_times.values())


# -- transport faults ---------------------------------------------------------


def test_crash_party_mid_protocol():
    """A transport-level crash-stop mid-run: the survivors still finish."""
    scenario = Scenario(4, 1, 0, "honest", "sync", None)
    backend = AsyncioBackend(
        4, network=scenario.build_network(), seed=scenario.scenario_seed
    )
    # Crash P_4's endpoint once the protocol is well underway (the ΠTripSh
    # row distribution is long past t=5Δ but the BA banks are not done).
    backend.crash_party(4, at_time=5.0)
    result = backend.run(
        lambda party: Preprocessing(party, "preproc", ts=1, ta=0, num_triples=2, anchor=0.0),
        max_time=5_000_000.0,
    )
    assert 4 in backend.corrupt_parties
    outputs = result.honest_outputs()
    assert set(outputs) == {1, 2, 3}
    assert triples_are_valid(result, 1)


def test_duplicated_deliveries_are_idempotent():
    """Duplicating every delivery must not change any honest output."""
    scenario = Scenario(4, 1, 0, "honest", "sync", None)
    clean = run_preprocessing_on(scenario, "asyncio")
    noisy = run_preprocessing_on(
        scenario,
        "asyncio",
        transport=InProcessTransport(
            faults=TransportFaults(random.Random(7), duplicate_probability=1.0)
        ),
    )
    assert canonical_outputs(noisy) == canonical_outputs(clean)
    # Duplication is pure waste: same sends, strictly more handling.
    assert noisy.metrics.messages_sent == clean.metrics.messages_sent


def test_reordered_deliveries_still_terminate_with_valid_triples():
    """Adjacent-swap reordering at the transport: async-safe protocols cope."""
    scenario = Scenario(4, 1, 0, "honest", "sync", None)
    result = run_preprocessing_on(
        scenario,
        "asyncio",
        transport=InProcessTransport(
            faults=TransportFaults(random.Random(13), reorder_probability=0.4)
        ),
    )
    outputs = result.honest_outputs()
    assert len(outputs) == 4
    assert triples_are_valid(result, 1)


def test_asyncio_virtual_clock_is_seed_reproducible():
    """Same seed, same transcript -- including under transport faults."""
    scenario = Scenario(4, 1, 0, "random_drop", "async", None)

    def once():
        return run_preprocessing_on(
            scenario,
            "asyncio",
            transport=InProcessTransport(
                faults=TransportFaults(
                    random.Random(scenario.scenario_seed),
                    duplicate_probability=0.2,
                    reorder_probability=0.2,
                )
            ),
        )

    first, second = once(), once()
    assert canonical_outputs(first) == canonical_outputs(second)
    assert transcript_fingerprint(first) == transcript_fingerprint(second)


def test_asyncio_backend_propagates_protocol_exceptions():
    """A handler that raises must fail run() like the sim backend does."""
    from repro.sim.party import ProtocolInstance

    class Exploding(ProtocolInstance):
        def start(self):
            if self.me == 1:
                self.send_all("boom")

        def receive(self, sender, payload):
            raise RuntimeError("handler blew up")

    for backend_name in ("sim", "asyncio"):
        backend = make_backend(backend_name, 3, network=SynchronousNetwork(), seed=0)
        with pytest.raises(RuntimeError, match="handler blew up"):
            backend.run(lambda party: Exploding(party, "x"), max_time=50.0)


# -- adaptive sharding --------------------------------------------------------


def test_auto_shard_size_picks_largest_fitting_shard():
    from repro.analysis.metrics import sharded_triple_message_bound

    n, ts, c_m = 4, 1, 3
    bits = FIELD.element_bits()
    per_dealer = triples_per_dealer(n, ts, c_m)
    assert per_dealer >= 3
    # A budget big enough for everything: stay unsharded.
    assert auto_shard_size(n, ts, c_m, bits, sharded_triple_message_bound(per_dealer, ts, bits)) is None
    # A budget that fits exactly two triples per round.
    two = sharded_triple_message_bound(2, ts, bits)
    assert auto_shard_size(n, ts, c_m, bits, two) == 2
    # A budget nothing fits: clamp to the minimum shard of one.
    assert auto_shard_size(n, ts, c_m, bits, 1) == 1


def test_run_mpc_auto_shard_respects_bandwidth_budget():
    from repro.analysis.metrics import sharded_triple_message_bound
    from repro.circuits import millionaires_product_circuit

    circuit = millionaires_product_circuit(FIELD, 4)
    inputs = {1: 3, 2: 5, 3: 7, 4: 11}
    expected = circuit.evaluate({pid: FIELD(v) for pid, v in inputs.items()})
    budget = sharded_triple_message_bound(1, 1, FIELD.element_bits())
    result = run_mpc(
        circuit, inputs, n=4, ts=1, ta=0, seed=9,
        shard_size="auto", bandwidth_budget=budget,
    )
    assert result.completed and result.outputs == expected
    assert result.metrics.max_message_bits <= budget
    with pytest.raises(ValueError):
        run_mpc(circuit, inputs, n=4, ts=1, ta=0, shard_size="auto")
    with pytest.raises(ValueError):
        run_mpc(circuit, inputs, n=4, ts=1, ta=0, bandwidth_budget=budget)


# -- the decoupling contract --------------------------------------------------


def test_no_protocol_module_imports_the_simulator():
    """Protocols see only the PartyRuntime context, never the Simulator.

    Walks every module outside ``repro.sim`` / ``repro.runtime`` and asserts
    none of them imports ``repro.sim.simulator`` (or the ``Simulator`` name
    from anywhere): the execution engine stays swappable.
    """
    src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
    offenders = []
    for path in src.rglob("*.py"):
        relative = path.relative_to(src)
        if relative.parts[0] in ("sim", "runtime"):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any("sim.simulator" in alias.name for alias in node.names):
                    offenders.append(str(relative))
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if "sim.simulator" in module or any(
                    alias.name == "Simulator" for alias in node.names
                ):
                    offenders.append(str(relative))
    assert not offenders, f"protocol modules importing the Simulator: {offenders}"


# -- the sync-mode real-clock schedulability bound ----------------------------


def test_missed_regular_mode_deadlines_stall_crash_sync_only(monkeypatch):
    """Pins the root cause of the tier-2 crash+sync-over-real-clock exclusion
    (see test_tcp.py::test_tier2_preprocessing_grid_over_tcp).

    Under a real clock, handler CPU consumes wall time that the virtual
    simulation does not account: whenever the peak per-Δ handler CPU exceeds
    ``time_scale * Δ`` real seconds (true during the protocol's startup
    burst on this container even at time_scale=0.2 s/unit), the clock runs
    ahead of computation and *every* synchronous deadline is missed -- the
    ΠBC regular-mode SBA is then fed ⊥ everywhere, so regular mode yields ⊥,
    every WPS votes 1, and the BA falls back to the star2 path that (at
    t_a=0) needs a full n-clique of the live parties.

    This test models exactly that failure mode on the deterministic sim
    backend (so it is environment-independent): with every regular-mode SBA
    fed ⊥,

    * the honest+sync diagonal cell still completes -- the fallback star
      search finds the full clique, which is the reason honest cells pass
      under a real clock, while
    * the crash+sync cell stalls with no honest outputs -- one crashed party
      breaks the n-clique the t_a=0 fallback requires, which is the reason
      that one cell (and only that one) hangs under a real clock.

    Backend parity for the crash+sync cell under *virtual* time is covered
    by test_asyncio_backend_matches_sim_backend_on_diagonal.
    """
    from repro.ba.sba import PhaseKingSBA
    from repro.broadcast.bc import BroadcastProtocol

    def overrun_start_sba(self):
        # The timer fires "late" (after the clock ran ahead of computation),
        # before the Acast delivered: the SBA input defaults to ⊥.
        self._sba = self.spawn(
            PhaseKingSBA, "sba", faults=self.faults, value=None, delta=self.delta
        )
        self._sba.start()

    monkeypatch.setattr(BroadcastProtocol, "_start_sba", overrun_start_sba)

    honest = run_preprocessing_on(DIAGONAL[0], "sim")
    assert honest.all_honest_done(), (
        "honest+sync must survive missed regular-mode deadlines via the "
        "fallback star path (full clique available)"
    )
    assert triples_are_valid(honest, DIAGONAL[0].ts)

    crashed = run_preprocessing_on(DIAGONAL[1], "sim")
    assert not crashed.all_honest_done(), (
        "crash+sync completed despite missed regular-mode deadlines: the "
        "t_a=0 fallback no longer needs a full clique, so the real-clock "
        "exclusion in test_tcp.py can likely be re-enabled"
    )
