"""Tests for ΠVSS, the best-of-both-worlds verifiable secret sharing (Theorem 4.16)."""

import pytest

from repro.sharing.vss import VerifiableSecretSharing, vss_time_bound
from repro.sim import (
    AdversarialAsynchronousNetwork,
    AsynchronousNetwork,
    CrashBehavior,
    EquivocatingBehavior,
    SilentBehavior,
    SynchronousNetwork,
    WrongValueBehavior,
)

from protocol_helpers import (
    FIELD,
    honest_outputs_consistent,
    random_polynomial,
    run_dealer_protocol,
    shares_match_polynomials,
)


def _run_vss(**kwargs):
    return run_dealer_protocol(VerifiableSecretSharing, **kwargs)


# -- honest dealer ----------------------------------------------------------------------------


def test_sync_correctness_honest_dealer():
    poly = random_polynomial(1, 42, seed=1)
    result = _run_vss(n=4, ts=1, ta=0, dealer=1, polynomials=[poly])
    assert len(result.honest_outputs()) == 4
    assert shares_match_polynomials(result, [poly])


def test_sync_correctness_output_time_bound():
    poly = random_polynomial(1, 8, seed=2)
    result = _run_vss(n=4, ts=1, ta=0, dealer=1, polynomials=[poly])
    bound = vss_time_bound(4, 1, 1.0)
    assert all(t <= bound + 1e-6 for t in result.honest_output_times().values())


def test_sync_correctness_two_polynomials():
    polys = [random_polynomial(1, 3, seed=3), random_polynomial(1, 4, seed=4)]
    result = _run_vss(n=4, ts=1, ta=0, dealer=2, polynomials=polys)
    assert shares_match_polynomials(result, polys)


def test_sync_correctness_with_crashed_party():
    poly = random_polynomial(1, 5, seed=5)
    result = _run_vss(n=4, ts=1, ta=0, dealer=2, polynomials=[poly],
                      corrupt={3: CrashBehavior()})
    assert len(result.honest_outputs()) == 3
    assert shares_match_polynomials(result, [poly])


def test_sync_correctness_with_lying_party():
    poly = random_polynomial(1, 6, seed=6)
    result = _run_vss(n=5, ts=1, ta=1, dealer=1, polynomials=[poly],
                      corrupt={4: WrongValueBehavior(offset=1)})
    assert len(result.honest_outputs()) == 4
    assert shares_match_polynomials(result, [poly])


def test_async_correctness_honest_dealer():
    poly = random_polynomial(1, 17, seed=7)
    result = _run_vss(n=5, ts=1, ta=1, dealer=1, polynomials=[poly],
                      network=AsynchronousNetwork(max_delay=6.0), seed=8)
    assert len(result.honest_outputs()) == 5
    assert shares_match_polynomials(result, [poly])


def test_async_correctness_with_byzantine_party():
    poly = random_polynomial(1, 23, seed=9)
    result = _run_vss(n=5, ts=1, ta=1, dealer=2, polynomials=[poly],
                      network=AsynchronousNetwork(max_delay=5.0),
                      corrupt={5: WrongValueBehavior(offset=4)}, seed=10)
    assert len(result.honest_outputs()) == 4
    assert shares_match_polynomials(result, [poly])


def test_async_correctness_with_slow_honest_party():
    poly = random_polynomial(1, 29, seed=11)
    network = AdversarialAsynchronousNetwork(slow_parties=frozenset({4}), slow_delay=30.0,
                                             fast_delay=0.3)
    result = _run_vss(n=5, ts=1, ta=1, dealer=1, polynomials=[poly], network=network,
                      seed=12, max_time=150_000.0)
    assert len(result.honest_outputs()) == 5
    assert shares_match_polynomials(result, [poly])


def test_privacy_adversary_rows_underdetermine_secret():
    poly = random_polynomial(1, 777, seed=13)
    result = _run_vss(n=4, ts=1, ta=0, dealer=1, polynomials=[poly], seed=14)
    instance = result.instances[3]
    row = instance.my_rows[0]
    # The corrupt party's single row is consistent with any candidate secret
    # (Lemma 2.2), so the protocol run leaks nothing beyond its own share.
    from repro.field.polynomial import lagrange_interpolate

    for candidate in (0, 123, 10 ** 9):
        q2 = lagrange_interpolate(
            FIELD, [(FIELD.alpha(3), row.evaluate(0)), (FIELD(0), FIELD(candidate))]
        )
        assert q2.degree <= 1


# -- corrupt dealer ----------------------------------------------------------------------------


def test_corrupt_silent_dealer_no_output():
    poly = random_polynomial(1, 5, seed=15)
    result = _run_vss(n=4, ts=1, ta=0, dealer=2, polynomials=[poly],
                      corrupt={2: SilentBehavior(lambda tag: True)}, max_time=5_000.0)
    assert len(result.honest_outputs()) == 0


def test_corrupt_dealer_strong_commitment_sync():
    """An equivocating dealer: whatever the honest parties output must be
    shares of a single degree-t_s polynomial (strong commitment)."""
    poly = random_polynomial(1, 31, seed=16)
    corrupt = {2: EquivocatingBehavior(group_b=[4], tag_predicate=lambda tag: True)}
    result = _run_vss(n=4, ts=1, ta=0, dealer=2, polynomials=[poly], corrupt=corrupt,
                      seed=17, max_time=60_000.0)
    assert honest_outputs_consistent(result, ts=1)
    # Strong commitment: if any honest party output, all honest parties do.
    outputs = result.honest_outputs()
    assert len(outputs) in (0, 3)


def test_corrupt_dealer_strong_commitment_async():
    poly = random_polynomial(1, 37, seed=18)
    corrupt = {1: WrongValueBehavior(target_recipients=[3], offset=5)}
    result = _run_vss(n=5, ts=1, ta=1, dealer=1, polynomials=[poly],
                      network=AsynchronousNetwork(max_delay=4.0), corrupt=corrupt,
                      seed=19, max_time=200_000.0)
    assert honest_outputs_consistent(result, ts=1)


def test_vss_shares_enable_robust_reconstruction():
    """The output shares form a t_s-sharing: robust reconstruction recovers q(0)."""
    from repro.sharing.shamir import robust_reconstruct

    poly = random_polynomial(1, 2024, seed=20)
    result = _run_vss(n=4, ts=1, ta=0, dealer=1, polynomials=[poly], seed=21)
    shares = {pid: out[0] for pid, out in result.honest_outputs().items()}
    assert robust_reconstruct(FIELD, shares, degree=1, max_faults=1) == FIELD(2024)
