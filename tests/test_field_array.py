"""Property-based equivalence tests: batched fast paths vs scalar reference.

Every fast path introduced by the batching layer (FieldArray element-wise
ops, Montgomery batch inversion, cached Lagrange/Vandermonde matrices, the
batched RS decoder, batched Shamir encode/decode and share extension) must
agree element-wise with the scalar ``FieldElement``/``Polynomial`` reference
implementation on randomized inputs.
"""

import copy
import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.reed_solomon import rs_decode, rs_decode_batch
from repro.field.array import (
    FieldArray,
    batch_enabled,
    batch_evaluate,
    batch_interpolate,
    batch_interpolate_at,
    batch_inverse,
    cache_stats,
    inverse_vandermonde,
    lagrange_matrix,
    lagrange_row,
    set_batch_enabled,
    vandermonde_matrix,
)
from repro.field.gf import DEFAULT_PRIME, GF, FieldElement, default_field
from repro.field.polynomial import (
    Polynomial,
    interpolate_at,
    lagrange_coefficients,
    lagrange_interpolate,
)
from repro.sharing.shamir import (
    batch_reconstruct,
    batch_share,
    reconstruct_secret,
    share_secret,
)
from repro.triples.transform import extend_shares, extend_shares_batch

F = default_field()

residues = st.integers(0, F.modulus - 1)
residue_lists = st.lists(residues, min_size=1, max_size=32)


# -- FieldArray element-wise ops vs FieldElement -------------------------------


@settings(max_examples=50, deadline=None)
@given(values=residue_lists, other=residues)
def test_property_elementwise_ops_match_scalar(values, other):
    array = FieldArray(F, values)
    scalar = [F(v) for v in values]
    rhs = F(other)
    assert (array + rhs).to_elements() == [v + rhs for v in scalar]
    assert (array - rhs).to_elements() == [v - rhs for v in scalar]
    assert (array * rhs).to_elements() == [v * rhs for v in scalar]
    assert (-array).to_elements() == [-v for v in scalar]
    assert (rhs + array).to_elements() == [rhs + v for v in scalar]
    assert (rhs - array).to_elements() == [rhs - v for v in scalar]


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2 ** 31), size=st.integers(1, 24))
def test_property_array_array_ops_match_scalar(seed, size):
    rng = random.Random(seed)
    a = FieldArray.random(F, size, rng)
    b = FieldArray.random(F, size, rng)
    sa, sb = a.to_elements(), b.to_elements()
    assert (a + b).to_elements() == [x + y for x, y in zip(sa, sb)]
    assert (a - b).to_elements() == [x - y for x, y in zip(sa, sb)]
    assert (a * b).to_elements() == [x * y for x, y in zip(sa, sb)]
    assert a.dot(b) == sum((x * y for x, y in zip(sa, sb)), F.zero())


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.integers(1, F.modulus - 1), min_size=1, max_size=32))
def test_property_batch_inverse_matches_scalar(values):
    expected = [F(v).inverse().value for v in values]
    assert batch_inverse(F, values) == expected
    array = FieldArray(F, values)
    assert array.inverse().to_elements() == [F(v) for v in expected]
    assert (array * array.inverse()).to_elements() == [F(1)] * len(values)


def test_batch_inverse_rejects_zero():
    with pytest.raises(ZeroDivisionError):
        batch_inverse(F, [3, 0, 5])
    with pytest.raises(ZeroDivisionError):
        FieldArray(F, [0]).inverse()


def test_array_guards():
    with pytest.raises(ValueError):
        FieldArray(F, [1, 2]) + FieldArray(F, [1, 2, 3])
    with pytest.raises(ValueError):
        FieldArray(F, [1]) + FieldArray(GF(257), [1])
    array = FieldArray(F, [5, 6, 7])
    assert len(array) == 3
    assert array[1] == F(6)
    assert array[1:].to_elements() == [F(6), F(7)]
    assert list(array) == [F(5), F(6), F(7)]
    assert array == [5, 6, 7]
    assert FieldArray.from_elements(F, array.to_elements()) == array
    assert FieldArray.zeros(F, 2).tolist() == [0, 0]


# -- cached interpolation machinery vs polynomial.py ---------------------------


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 2 ** 31),
    count=st.integers(1, 8),
    at=st.integers(0, 100),
)
def test_property_lagrange_row_matches_lagrange_coefficients(seed, count, at):
    rng = random.Random(seed)
    xs = rng.sample(range(1, 200), count)
    expected = [int(c) for c in lagrange_coefficients(F, xs, at)]
    assert list(lagrange_row(F, xs, at)) == expected


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2 ** 31), degree=st.integers(0, 6), at=st.integers(0, 500))
def test_property_batch_interpolate_at_matches_interpolate_at(seed, degree, at):
    rng = random.Random(seed)
    polys = [Polynomial.random(F, degree, rng=rng) for _ in range(4)]
    xs = list(range(1, degree + 2))
    rows = [[int(poly.evaluate(x)) for x in xs] for poly in polys]
    got = batch_interpolate_at(F, xs, rows, at)
    for poly, value in zip(polys, got):
        points = [(F(x), poly.evaluate(x)) for x in xs]
        assert F(value) == interpolate_at(F, points, at) == poly.evaluate(at)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2 ** 31), degree=st.integers(0, 6))
def test_property_batch_interpolate_matches_lagrange_interpolate(seed, degree):
    rng = random.Random(seed)
    polys = [Polynomial.random(F, degree, rng=rng) for _ in range(3)]
    xs = list(range(1, degree + 2))
    rows = [[int(poly.evaluate(x)) for x in xs] for poly in polys]
    for poly, coeffs in zip(polys, batch_interpolate(F, xs, rows)):
        reference = lagrange_interpolate(F, [(F(x), poly.evaluate(x)) for x in xs])
        assert Polynomial(F, coeffs) == reference == poly


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2 ** 31), degree=st.integers(0, 6), count=st.integers(1, 6))
def test_property_batch_evaluate_matches_polynomial_evaluate(seed, degree, count):
    rng = random.Random(seed)
    polys = [Polynomial.random(F, degree, rng=rng) for _ in range(count)]
    xs = list(range(1, 10))
    rows = batch_evaluate(F, [[int(c) for c in poly.coeffs] for poly in polys], xs)
    for poly, row in zip(polys, rows):
        assert [F(v) for v in row] == poly.evaluate_many(xs)


def test_vandermonde_and_inverse_are_inverse_maps():
    xs = [1, 2, 3, 4]
    poly = Polynomial(F, [F(3), F(1), F(4), F(1)])
    values = [int(poly.evaluate(x)) for x in xs]
    coeffs = batch_interpolate(F, xs, [values])[0]
    assert coeffs == [int(c) for c in poly.coeffs]
    matrix = vandermonde_matrix(F, xs, 3)
    back = [sum(m * c for m, c in zip(row, coeffs)) % F.modulus for row in matrix]
    assert back == values
    assert inverse_vandermonde(F, xs) is inverse_vandermonde(F, tuple(xs))


def test_lru_cache_evicts_oldest_and_counts():
    from repro.field.kernels import LruCache

    cache = LruCache(3)
    for key in "abc":
        cache.put(key, key.upper())
    assert cache.get("a") == "A"  # refresh "a": "b" is now least recent
    cache.put("d", "D")
    assert cache.evictions == 1
    assert cache.get("b") is None and "b" not in cache
    assert cache.get("a") == "A" and cache.get("d") == "D"
    cache.put("e", "E")  # evicts "c" (a/d were refreshed by the gets above)
    assert cache.evictions == 2 and cache.get("c") is None
    assert len(cache) == 3


def test_cache_stats_exposes_sizes_limit_and_eviction_counters():
    lagrange_row(F, (901, 902, 903), 0)
    stats = cache_stats()
    assert stats["limit"] >= 1
    for name in ("lagrange_rows", "lagrange_matrices", "vandermonde",
                 "inverse_vandermonde"):
        assert stats[name] >= 0
        assert stats[f"{name}_evictions"] >= 0
    assert stats["lagrange_rows"] >= 1


def test_matrix_caches_hit_across_field_instances():
    before = cache_stats()["lagrange_rows"]
    other_field = GF(DEFAULT_PRIME)
    lagrange_row(F, (301, 302, 303), 0)
    after_first = cache_stats()["lagrange_rows"]
    lagrange_row(other_field, (301, 302, 303), 0)
    assert cache_stats()["lagrange_rows"] == after_first >= before + 1


# -- batched RS decoding vs scalar rs_decode ----------------------------------


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2 ** 31),
    degree=st.integers(0, 3),
    faults=st.integers(0, 2),
    count=st.integers(1, 5),
)
def test_property_rs_decode_batch_matches_scalar(seed, degree, faults, count):
    rng = random.Random(seed)
    n_points = degree + 2 * faults + 1 + rng.randrange(3)
    xs = list(range(1, n_points + 1))
    polys = [Polynomial.random(F, degree, rng=rng) for _ in range(count)]
    rows = []
    for poly in polys:
        row = [int(poly.evaluate(x)) for x in xs]
        for position in rng.sample(range(n_points), min(faults, n_points)):
            row[position] = (row[position] + rng.randrange(1, 100)) % F.modulus
        rows.append(row)
    batch = rs_decode_batch(F, xs, rows, degree, faults)
    for poly, row, decoded in zip(polys, rows, batch):
        scalar = rs_decode(F, list(zip(xs, row)), degree, faults)
        assert decoded == scalar
        if scalar is not None:
            assert decoded == poly


# -- batched Shamir encode/decode vs scalar -----------------------------------


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2 ** 31), degree=st.integers(0, 4), count=st.integers(1, 8))
def test_property_batch_share_reconstruct_roundtrip(seed, degree, count):
    rng = random.Random(seed)
    n = 2 * degree + 3
    secrets = [rng.randrange(F.modulus) for _ in range(count)]
    shares = batch_share(F, secrets, degree, n, rng=rng)
    assert set(shares) == set(range(1, n + 1))
    recovered = batch_reconstruct(F, shares, degree)
    assert [int(v) for v in recovered] == secrets
    # Every value's shares lie on a degree-d polynomial: any d+1 parties agree.
    for k in range(count):
        per_value = {i: shares[i][k] for i in range(n, n - degree - 1, -1)}
        assert int(reconstruct_secret(F, per_value, degree)) == secrets[k]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2 ** 31), degree=st.integers(0, 4), count=st.integers(1, 8))
def test_property_batch_reconstruct_matches_scalar_on_scalar_sharings(
    seed, degree, count
):
    rng = random.Random(seed)
    n = degree + 2
    sharings = [
        share_secret(F, rng.randrange(F.modulus), degree, n, rng=rng)
        for _ in range(count)
    ]
    stacked = {
        i: [sharing.shares[i] for sharing in sharings] for i in range(1, n + 1)
    }
    batch = batch_reconstruct(F, stacked, degree)
    scalar = [reconstruct_secret(F, sharing.shares, degree) for sharing in sharings]
    assert batch == scalar


# -- share extension (triples fast path) vs scalar Lagrange --------------------


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2 ** 31), degree=st.integers(0, 4), at=st.integers(0, 10_050))
def test_property_extend_shares_matches_scalar_lagrange(seed, degree, at):
    rng = random.Random(seed)
    shares = [F.random(rng) for _ in range(degree + 1)]
    xs = [F.alpha(i) for i in range(1, degree + 2)]
    coefficients = lagrange_coefficients(F, xs, at)
    expected = sum((c * s for c, s in zip(coefficients, shares)), F.zero())
    assert extend_shares(F, shares, degree, F(at)) == expected
    rows = extend_shares_batch(F, [shares, shares], degree, [F(at), F(at + 1)])
    assert rows[0][0] == expected
    assert rows[1][0] == expected
    assert rows[0][1] == extend_shares(F, shares, degree, F(at + 1))


# -- GF interning (cache-identity fix) ----------------------------------------


def test_gf_instances_are_interned_per_modulus():
    assert GF(257) is GF(257)
    assert GF(DEFAULT_PRIME) is default_field()
    assert GF(257) is not GF(DEFAULT_PRIME)


def test_gf_interning_survives_pickle_and_deepcopy():
    field = GF(257)
    assert pickle.loads(pickle.dumps(field)) is field
    assert copy.deepcopy(field) is field
    element = FieldElement(5, field)
    clone = pickle.loads(pickle.dumps(element))
    assert clone == element and clone.field is field


def test_gf_interning_still_validates_primality():
    with pytest.raises(ValueError):
        GF(100)
    # Interned via check_prime=False first, a later checked request still
    # rejects the composite modulus.
    assert GF(341, check_prime=False).modulus == 341  # 341 = 11 * 31
    with pytest.raises(ValueError):
        GF(341)


# -- batching switch and bench smoke ------------------------------------------


def test_batch_toggle_roundtrip():
    assert batch_enabled()
    previous = set_batch_enabled(False)
    try:
        assert previous is True
        assert not batch_enabled()
    finally:
        set_batch_enabled(True)
    assert batch_enabled()


def test_bench_batch_smoke():
    """Scaled-down run of benchmarks/bench_batch.py so tier-1 keeps it green."""
    import bench_batch

    stats = bench_batch.measure_reconstruct_speedup(
        num_secrets=32, n=8, degree=2, repeats=1
    )
    assert stats["batch_s"] > 0
    robust = bench_batch.measure_robust_speedup(
        num_secrets=8, n=8, degree=2, faults=2, repeats=1
    )
    assert robust["batch_s"] > 0
    oec = bench_batch.measure_oec_speedup(
        num_values=8, n=8, degree=2, faults=2, repeats=1
    )
    assert oec["batch_s"] > 0
