"""Dispatch-threshold calibration: persistence, loading, and the CLI smoke run.

``python -m repro.field.calibrate`` measures int-vs-accelerated crossovers
and persists them to a JSON document that
:func:`repro.field.kernels.load_dispatch_calibration` applies at import.
These tests cover the load/apply contract hermetically (hand-written
documents, no timing) and run the real CLI in ``--smoke`` mode in a
subprocess -- wall-clock capped via the ``calibrate`` marker's SIGALRM
fixture -- to prove the end-to-end path works in CI.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.field import kernels
from repro.field.kernels import (
    DISPATCH_THRESHOLDS,
    GMPY2_DISPATCH_THRESHOLDS,
    load_dispatch_calibration,
)

SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _subprocess_env(calibration_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_DISPATCH_CALIBRATION"] = str(calibration_path)
    return env


@pytest.fixture()
def _restore_thresholds():
    """Snapshot both dispatch tables; undo any mutation after the test."""
    saved = (dict(DISPATCH_THRESHOLDS), dict(GMPY2_DISPATCH_THRESHOLDS))
    try:
        yield
    finally:
        DISPATCH_THRESHOLDS.clear()
        DISPATCH_THRESHOLDS.update(saved[0])
        GMPY2_DISPATCH_THRESHOLDS.clear()
        GMPY2_DISPATCH_THRESHOLDS.update(saved[1])


def test_load_applies_known_keys_only(tmp_path, _restore_thresholds):
    document = {
        "thresholds": {
            "numpy": {
                "elementwise": 7,
                "matmul_ops": 9,
                "no_such_knob": 123,
            },
            "gmpy2": {"inverse": 11},
            "cupy": {"elementwise": 5},
        },
        "meta": {"smoke": True},
    }
    target = tmp_path / "calibration.json"
    target.write_text(json.dumps(document))
    assert load_dispatch_calibration(str(target)) is True
    assert DISPATCH_THRESHOLDS["elementwise"] == 7
    assert DISPATCH_THRESHOLDS["matmul_ops"] == 9
    assert "no_such_knob" not in DISPATCH_THRESHOLDS
    assert GMPY2_DISPATCH_THRESHOLDS["inverse"] == 11


@pytest.mark.parametrize(
    "content",
    [
        "",  # empty file
        "not json {",  # malformed
        json.dumps([1, 2, 3]),  # wrong top-level type
        json.dumps({"thresholds": {"numpy": {"elementwise": -4}}}),  # bad value
        json.dumps({"thresholds": {"numpy": {"elementwise": "32"}}}),  # bad type
    ],
)
def test_load_rejects_bad_documents(tmp_path, content, _restore_thresholds):
    before = dict(DISPATCH_THRESHOLDS)
    target = tmp_path / "calibration.json"
    target.write_text(content)
    assert load_dispatch_calibration(str(target)) is False
    assert DISPATCH_THRESHOLDS == before


def test_load_missing_file_is_a_noop(tmp_path, _restore_thresholds):
    before = dict(DISPATCH_THRESHOLDS)
    assert load_dispatch_calibration(str(tmp_path / "absent.json")) is False
    assert DISPATCH_THRESHOLDS == before


def test_calibration_path_honors_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DISPATCH_CALIBRATION", str(tmp_path / "x.json"))
    assert kernels._calibration_path() == str(tmp_path / "x.json")
    monkeypatch.delenv("REPRO_DISPATCH_CALIBRATION")
    assert kernels._calibration_path().endswith("DISPATCH_CALIBRATION.json")


@pytest.mark.calibrate
def test_calibrate_smoke_cli_writes_loadable_document(tmp_path):
    """The CI-friendly path: ``--smoke`` run, then import-time pickup."""
    target = tmp_path / "calibration.json"
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.field.calibrate",
            "--smoke",
            "--output",
            str(target),
        ],
        env=_subprocess_env(target),
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    document = json.loads(target.read_text())
    assert document["meta"]["smoke"] is True
    thresholds = document["thresholds"]
    assert isinstance(thresholds, dict)
    for table in thresholds.values():
        for value in table.values():
            assert isinstance(value, int) and value > 0

    # A fresh interpreter with REPRO_DISPATCH_CALIBRATION pointing at the
    # document must apply it during ``repro.field.kernels`` import.
    probe = subprocess.run(
        [
            sys.executable,
            "-c",
            "import json; from repro.field.kernels import DISPATCH_THRESHOLDS;"
            " print(json.dumps(DISPATCH_THRESHOLDS))",
        ],
        env=_subprocess_env(target),
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert probe.returncode == 0, probe.stderr
    loaded = json.loads(probe.stdout)
    for name, value in thresholds.get("numpy", {}).items():
        if name in loaded:
            assert loaded[name] == value
