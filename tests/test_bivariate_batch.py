"""Batched bivariate layer vs the scalar reference twin.

Property-based equivalence for :class:`~repro.field.bivariate.BatchSymmetricBivariate`
(mirroring ``tests/test_field_array.py``), its error paths, and whole-protocol
regressions proving that WPS/VSS runs are bit-identical in batch and scalar
modes -- including the verdicts published against an adversarial dealer.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.field.array import set_batch_enabled
from repro.field.bivariate import BatchSymmetricBivariate, SymmetricBivariatePolynomial
from repro.field.gf import default_field
from repro.field.polynomial import Polynomial
from repro.sharing.vss import VerifiableSecretSharing
from repro.sharing.wps import WeakPolynomialSharing
from repro.sim import EquivocatingBehavior, SynchronousNetwork, WrongValueBehavior

from protocol_helpers import random_polynomial, run_dealer_protocol

F = default_field()


def _twin_embeddings(degree, secret, seed):
    """The same random embedding built by both implementations (same rng)."""
    q = Polynomial.random(F, degree, constant_term=secret, rng=random.Random(seed))
    scalar = SymmetricBivariatePolynomial.random_embedding(F, q, rng=random.Random(seed + 1))
    batch = BatchSymmetricBivariate.random_embedding(F, q, rng=random.Random(seed + 1))
    return q, scalar, batch


# -- construction and evaluation equivalence -----------------------------------


@settings(max_examples=25, deadline=None)
@given(degree=st.integers(1, 5), secret=st.integers(0, 1000), seed=st.integers(0, 2 ** 31))
def test_property_random_embedding_matches_scalar(degree, secret, seed):
    q, scalar, batch = _twin_embeddings(degree, secret, seed)
    assert batch == scalar
    assert batch.to_scalar() == scalar
    assert BatchSymmetricBivariate.from_scalar(scalar) == batch
    assert batch.secret() == scalar.secret() == F(secret)
    assert batch.zero_row() == scalar.zero_row() == q
    assert batch.is_symmetric()


@settings(max_examples=25, deadline=None)
@given(degree=st.integers(1, 4), seed=st.integers(0, 2 ** 31), x=st.integers(0, 60), y=st.integers(0, 60))
def test_property_evaluate_and_row_match_scalar(degree, seed, x, y):
    _, scalar, batch = _twin_embeddings(degree, 5, seed)
    assert batch.evaluate(x, y) == scalar.evaluate(x, y)
    assert batch.evaluate(x, y) == batch.evaluate(y, x)
    assert batch.row(y) == scalar.row(y)


@settings(max_examples=25, deadline=None)
@given(degree=st.integers(1, 4), seed=st.integers(0, 2 ** 31), count=st.integers(1, 9))
def test_property_rows_at_all_points_match_scalar_rows(degree, seed, count):
    _, scalar, batch = _twin_embeddings(degree, 7, seed)
    points = [int(F.alpha(i)) for i in range(1, count + 1)]
    batch_rows = batch.rows_at_all_points(points)
    scalar_rows = [scalar.row(F.alpha(i)) for i in range(1, count + 1)]
    assert batch_rows == scalar_rows


@settings(max_examples=25, deadline=None)
@given(degree=st.integers(1, 4), seed=st.integers(0, 2 ** 31), nx=st.integers(1, 6), ny=st.integers(1, 6))
def test_property_eval_grid_matches_pairwise_evaluate(degree, seed, nx, ny):
    _, scalar, batch = _twin_embeddings(degree, 9, seed)
    xs = [int(F.alpha(i)) for i in range(1, nx + 1)]
    ys = [int(F.beta(j)) for j in range(1, ny + 1)]
    grid = batch.eval_grid(xs, ys)
    for a, x in enumerate(xs):
        for b, y in enumerate(ys):
            assert F(grid[a][b]) == scalar.evaluate(x, y) == batch.evaluate(x, y)


# -- from_univariate_rows: equivalence and error paths -------------------------


@settings(max_examples=25, deadline=None)
@given(degree=st.integers(1, 4), seed=st.integers(0, 2 ** 31))
def test_property_from_univariate_rows_matches_scalar(degree, seed):
    _, scalar, batch = _twin_embeddings(degree, 3, seed)
    rows = [(F.alpha(i), scalar.row(F.alpha(i))) for i in range(1, degree + 2)]
    rebuilt_scalar = SymmetricBivariatePolynomial.from_univariate_rows(F, rows)
    rebuilt_batch = BatchSymmetricBivariate.from_univariate_rows(F, rows)
    assert rebuilt_batch == rebuilt_scalar == scalar
    assert rebuilt_batch == batch


def test_from_univariate_rows_rejects_inconsistent_rows():
    _, scalar, _ = _twin_embeddings(2, 77, seed=13)
    rows = [(F.alpha(i), scalar.row(F.alpha(i))) for i in range(1, 4)]
    bad = Polynomial(F, [c + 1 for c in rows[1][1].coeffs])
    rows[1] = (rows[1][0], bad)
    with pytest.raises(ValueError):
        BatchSymmetricBivariate.from_univariate_rows(F, rows)


def test_from_univariate_rows_requires_enough_rows():
    _, scalar, _ = _twin_embeddings(3, 1, seed=17)
    rows = [(F.alpha(i), scalar.row(F.alpha(i))) for i in range(1, 3)]
    with pytest.raises(ValueError):
        BatchSymmetricBivariate.from_univariate_rows(F, rows)
    with pytest.raises(ValueError):
        BatchSymmetricBivariate.from_univariate_rows(F, [])


def test_checked_constructor_rejects_asymmetric_and_non_square():
    with pytest.raises(ValueError):
        BatchSymmetricBivariate(F, [[1, 2], [3, 4]])
    with pytest.raises(ValueError):
        BatchSymmetricBivariate(F, [[1, 2], [2]])


def test_trusted_constructor_skips_revalidation():
    """The trusted path is unchecked by design: validation stays at the
    untrusted boundary (dealer input), not on every internal construction."""
    asymmetric = [[F(1), F(2)], [F(3), F(4)]]
    trusted = SymmetricBivariatePolynomial.trusted(F, asymmetric)
    assert not trusted.is_symmetric()
    with pytest.raises(ValueError):
        SymmetricBivariatePolynomial(F, asymmetric)


# -- whole-protocol batch-vs-scalar regressions --------------------------------


def _run_twice(cls, **kwargs):
    results = {}
    for batch in (True, False):
        previous = set_batch_enabled(batch)
        try:
            results[batch] = run_dealer_protocol(cls, **kwargs)
        finally:
            set_batch_enabled(previous)
    return results[True], results[False]


def _assert_identical_runs(batch_run, scalar_run):
    assert batch_run.honest_outputs() == scalar_run.honest_outputs()
    assert batch_run.honest_output_times() == scalar_run.honest_output_times()
    for pid, instance in batch_run.instances.items():
        twin = scalar_run.instances[pid]
        assert instance._verdicts == twin._verdicts
        assert instance._ba_output == twin._ba_output
        assert instance.accepted_star == twin.accepted_star


@pytest.mark.parametrize("cls", [WeakPolynomialSharing, VerifiableSecretSharing])
def test_honest_dealer_batch_and_scalar_runs_identical(cls):
    poly = random_polynomial(1, 42, seed=1)
    batch_run, scalar_run = _run_twice(
        cls, n=4, ts=1, ta=0, dealer=1, polynomials=[poly], seed=3
    )
    _assert_identical_runs(batch_run, scalar_run)
    assert len(batch_run.honest_outputs()) == 4


def test_adversarial_dealer_wps_verdicts_identical():
    """An equivocating dealer must draw exactly the same accept/reject
    verdicts (and OK/NOK broadcasts) whichever twin computes them."""
    poly = random_polynomial(1, 50, seed=14)
    corrupt = {2: EquivocatingBehavior(group_b=[4], tag_predicate=lambda tag: "/points" not in tag)}
    batch_run, scalar_run = _run_twice(
        WeakPolynomialSharing,
        n=4, ts=1, ta=0, dealer=2, polynomials=[poly],
        corrupt=corrupt, seed=15, max_time=20_000.0,
    )
    _assert_identical_runs(batch_run, scalar_run)


def test_lying_party_wps_outputs_identical():
    poly = random_polynomial(1, 11, seed=6)
    batch_run, scalar_run = _run_twice(
        WeakPolynomialSharing,
        n=5, ts=1, ta=1, dealer=1, polynomials=[poly],
        corrupt={4: WrongValueBehavior(offset=3)}, seed=7,
    )
    _assert_identical_runs(batch_run, scalar_run)
    assert len(batch_run.honest_outputs()) == 4


def test_adversarial_dealer_vss_verdicts_identical():
    poly = random_polynomial(1, 60, seed=5)
    corrupt = {2: EquivocatingBehavior(group_b=[4], tag_predicate=lambda tag: True)}
    batch_run, scalar_run = _run_twice(
        VerifiableSecretSharing,
        n=4, ts=1, ta=0, dealer=2, polynomials=[poly],
        corrupt=corrupt, seed=5, max_time=300_000.0,
    )
    _assert_identical_runs(batch_run, scalar_run)
