"""Tests for Shamir d-sharing helpers (Definition 2.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.field.gf import default_field
from repro.sharing.shamir import (
    BatchReconstructionError,
    SharedValue,
    batch_reconstruct,
    batch_robust_reconstruct,
    batch_share,
    reconstruct_secret,
    robust_reconstruct,
    share_polynomial,
    share_secret,
)
from repro.field.polynomial import Polynomial

F = default_field()


def test_share_and_reconstruct():
    sharing = share_secret(F, 42, degree=2, n=7, rng=random.Random(1))
    assert len(sharing.shares) == 7
    assert sharing.reconstruct() == F(42)
    assert reconstruct_secret(F, sharing.shares, 2) == F(42)


def test_share_of_specific_party():
    sharing = share_secret(F, 5, degree=1, n=4, rng=random.Random(2))
    assert sharing.share_of(3) == sharing.shares[3]


def test_share_polynomial_evaluates_alphas():
    poly = Polynomial.random(F, 2, rng=random.Random(3))
    shares = share_polynomial(F, poly, 5)
    for i in range(1, 6):
        assert shares[i] == poly.evaluate(F.alpha(i))


def test_reconstruct_requires_enough_shares():
    sharing = share_secret(F, 9, degree=3, n=6, rng=random.Random(4))
    partial = {i: sharing.shares[i] for i in (1, 2, 3)}
    with pytest.raises(ValueError):
        reconstruct_secret(F, partial, 3)


def test_linearity_of_sharings():
    a = share_secret(F, 10, degree=1, n=4, rng=random.Random(5))
    b = share_secret(F, 20, degree=1, n=4, rng=random.Random(6))
    total = a + b
    assert total.reconstruct() == F(30)
    scaled = a * 3
    assert scaled.reconstruct() == F(30)
    scaled_r = 3 * a
    assert scaled_r.reconstruct() == F(30)


def test_robust_reconstruct_with_corrupt_share():
    sharing = share_secret(F, 77, degree=1, n=4, rng=random.Random(7))
    shares = dict(sharing.shares)
    shares[2] = shares[2] + 9  # one corrupted share, t = 1
    assert robust_reconstruct(F, shares, degree=1, max_faults=1) == F(77)


def test_robust_reconstruct_fails_with_too_many_errors():
    sharing = share_secret(F, 77, degree=1, n=4, rng=random.Random(8))
    shares = dict(sharing.shares)
    # Three corrupted shares (non-collinear offsets) out of four with t = 1:
    # the true secret can no longer be recovered.
    shares[1] = shares[1] + 1
    shares[2] = shares[2] + 5
    shares[3] = shares[3] + 17
    assert robust_reconstruct(F, shares, degree=1, max_faults=1) != F(77)


def test_privacy_t_shares_leave_secret_undetermined():
    """Any t shares are consistent with every possible secret."""
    sharing = share_secret(F, 123, degree=2, n=5, rng=random.Random(9))
    observed = [(F.alpha(i), sharing.shares[i]) for i in (1, 2)]  # only 2 < t+1 shares
    from repro.field.polynomial import lagrange_interpolate

    for candidate in (0, 1, 999):
        poly = lagrange_interpolate(F, observed + [(F(0), F(candidate))])
        assert poly.degree <= 2
        for x, y in observed:
            assert poly.evaluate(x) == y


@settings(max_examples=30, deadline=None)
@given(secret=st.integers(0, 10 ** 9), degree=st.integers(0, 3), seed=st.integers(0, 2 ** 31))
def test_property_share_reconstruct_roundtrip(secret, degree, seed):
    n = 2 * degree + 3
    sharing = share_secret(F, secret, degree=degree, n=n, rng=random.Random(seed))
    assert sharing.reconstruct() == F(secret)
    assert robust_reconstruct(F, sharing.shares, degree, max_faults=degree + 1) == F(secret)


# -- batched sharing / reconstruction -----------------------------------------


def _corrupt_rows(shares, parties, offset=13):
    """Return per-party share vectors with whole rows perturbed."""
    out = {}
    for party, vector in shares.items():
        elements = vector.to_elements()
        if party in parties:
            elements = [value + offset for value in elements]
        out[party] = elements
    return out


def test_batch_share_matches_scalar_reconstruction():
    secrets = [3, 5, 7, 11]
    shares = batch_share(F, secrets, degree=2, n=7, rng=random.Random(21))
    for k, secret in enumerate(secrets):
        per_value = {i: shares[i][k] for i in shares}
        assert reconstruct_secret(F, per_value, 2) == F(secret)
    assert [int(v) for v in batch_reconstruct(F, shares, 2)] == secrets


def test_batch_reconstruct_requires_enough_parties():
    shares = batch_share(F, [1, 2], degree=3, n=6, rng=random.Random(22))
    partial = {i: shares[i] for i in (1, 2, 3)}
    with pytest.raises(ValueError):
        batch_reconstruct(F, partial, 3)


@pytest.mark.parametrize("n,t", [(4, 1), (8, 2), (16, 5)])
def test_batch_robust_reconstruct_with_exactly_t_corrupt_rows(n, t):
    rng = random.Random(400 + n)
    secrets = [rng.randrange(F.modulus) for _ in range(6)]
    shares = batch_share(F, secrets, degree=t, n=n, rng=rng)
    # Worst case for the optimistic decoder: corruptions in the leading rows.
    corrupted = _corrupt_rows(shares, set(range(1, t + 1)))
    recovered = batch_robust_reconstruct(F, corrupted, degree=t, max_faults=t)
    assert [int(v) for v in recovered] == secrets
    # Scalar twin agrees value-by-value.
    for k, secret in enumerate(secrets):
        per_value = {i: corrupted[i][k] for i in corrupted}
        assert robust_reconstruct(F, per_value, t, t) == F(secret)


@pytest.mark.parametrize("n,t", [(4, 1), (8, 2), (16, 5)])
def test_batch_robust_reconstruct_fails_loudly_at_t_plus_1_corrupt_rows(n, t):
    rng = random.Random(500 + n)
    secrets = [rng.randrange(F.modulus) for _ in range(4)]
    shares = batch_share(F, secrets, degree=t, n=n, rng=rng)
    corrupted = _corrupt_rows(shares, set(range(1, t + 2)))
    with pytest.raises(BatchReconstructionError) as excinfo:
        batch_robust_reconstruct(F, corrupted, degree=t, max_faults=t)
    assert excinfo.value.failed_indices == list(range(4))


def test_batch_robust_reconstruct_empty_input_is_loud():
    with pytest.raises(BatchReconstructionError):
        batch_robust_reconstruct(F, {}, degree=1, max_faults=1)


@settings(max_examples=20, deadline=None)
@given(degree=st.integers(0, 3), seed=st.integers(0, 2 ** 31), count=st.integers(1, 6))
def test_property_batch_robust_roundtrip_with_random_corruptions(degree, seed, count):
    rng = random.Random(seed)
    n = 3 * degree + 1 if degree else 3
    secrets = [rng.randrange(F.modulus) for _ in range(count)]
    shares = batch_share(F, secrets, degree=degree, n=n, rng=rng)
    corrupt = set(rng.sample(range(1, n + 1), degree))
    corrupted = _corrupt_rows(shares, corrupt, offset=rng.randrange(1, 1000))
    recovered = batch_robust_reconstruct(F, corrupted, degree, max_faults=degree)
    assert [int(v) for v in recovered] == secrets
