"""Tests for univariate polynomials and Lagrange interpolation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.field.gf import default_field
from repro.field.polynomial import (
    Polynomial,
    interpolate_at,
    lagrange_coefficients,
    lagrange_interpolate,
)

F = default_field()


def test_construction_strips_trailing_zeros():
    poly = Polynomial(F, [F(1), F(2), F(0), F(0)])
    assert poly.degree == 1
    assert poly.coeffs == [F(1), F(2)]


def test_zero_polynomial():
    zero = Polynomial.zero(F)
    assert zero.is_zero()
    assert zero.degree == 0
    assert zero.evaluate(5) == F(0)


def test_constant_polynomial():
    poly = Polynomial.constant(F, 9)
    assert poly.degree == 0
    assert poly.constant_term() == F(9)


def test_evaluate_horner():
    poly = Polynomial(F, [F(1), F(2), F(3)])  # 1 + 2x + 3x^2
    assert poly(0) == F(1)
    assert poly(1) == F(6)
    assert poly(2) == F(17)
    assert poly.evaluate_many([0, 1, 2]) == [F(1), F(6), F(17)]


def test_random_polynomial_degree_and_constant():
    rng = random.Random(5)
    poly = Polynomial.random(F, 4, constant_term=7, rng=rng)
    assert poly.degree <= 4
    assert poly.constant_term() == F(7)


def test_addition_subtraction_negation():
    p = Polynomial(F, [F(1), F(2)])
    q = Polynomial(F, [F(3), F(0), F(5)])
    assert (p + q).evaluate(2) == p.evaluate(2) + q.evaluate(2)
    assert (p - q).evaluate(3) == p.evaluate(3) - q.evaluate(3)
    assert (-p).evaluate(4) == -(p.evaluate(4))


def test_multiplication_by_scalar_and_polynomial():
    p = Polynomial(F, [F(1), F(2)])
    q = Polynomial(F, [F(3), F(4)])
    assert (p * 3).evaluate(5) == p.evaluate(5) * 3
    assert (3 * p).evaluate(5) == p.evaluate(5) * 3
    product = p * q
    assert product.degree == 2
    assert product.evaluate(7) == p.evaluate(7) * q.evaluate(7)


def test_divmod_roundtrip():
    rng = random.Random(11)
    a = Polynomial.random(F, 5, rng=rng)
    b = Polynomial.random(F, 2, rng=rng)
    quotient, remainder = a.divmod(b)
    assert (quotient * b + remainder).coeffs == a.coeffs
    assert remainder.degree < b.degree or remainder.is_zero()
    assert a // b == quotient
    assert (a % b).coeffs == remainder.coeffs


def test_divmod_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        Polynomial(F, [F(1)]).divmod(Polynomial.zero(F))


def test_equality_and_hash():
    assert Polynomial(F, [F(1), F(2)]) == Polynomial(F, [F(1), F(2), F(0)])
    assert Polynomial(F, [F(1)]) != Polynomial(F, [F(2)])
    assert hash(Polynomial(F, [F(1), F(2)])) == hash(Polynomial(F, [F(1), F(2)]))
    assert Polynomial(F, [F(1)]).__eq__(42) is NotImplemented


def test_lagrange_interpolate_exact():
    rng = random.Random(3)
    poly = Polynomial.random(F, 3, rng=rng)
    points = [(F(i), poly.evaluate(i)) for i in range(1, 5)]
    recovered = lagrange_interpolate(F, points)
    assert recovered == poly


def test_lagrange_interpolate_rejects_duplicates():
    with pytest.raises(ValueError):
        lagrange_interpolate(F, [(F(1), F(2)), (F(1), F(3))])
    with pytest.raises(ValueError):
        lagrange_coefficients(F, [F(1), F(1)], F(0))


def test_lagrange_coefficients_sum_to_one():
    xs = [F(1), F(2), F(3)]
    coeffs = lagrange_coefficients(F, xs, F(9))
    # Interpolating the constant-1 polynomial must give 1.
    total = F(0)
    for c in coeffs:
        total = total + c
    assert total == F(1)


def test_interpolate_at_matches_polynomial():
    rng = random.Random(4)
    poly = Polynomial.random(F, 2, rng=rng)
    points = [(F(i), poly.evaluate(i)) for i in (1, 2, 3)]
    assert interpolate_at(F, points, 10) == poly.evaluate(10)
    assert interpolate_at(F, points, 0) == poly.constant_term()


@settings(max_examples=40, deadline=None)
@given(
    coeffs=st.lists(st.integers(0, 10 ** 12), min_size=1, max_size=6),
    x=st.integers(0, 10 ** 12),
)
def test_property_add_mul_consistency(coeffs, x):
    poly = Polynomial(F, [F(c) for c in coeffs])
    double = poly + poly
    assert double.evaluate(x) == poly.evaluate(x) * 2
    squared = poly * poly
    assert squared.evaluate(x) == poly.evaluate(x) * poly.evaluate(x)


@settings(max_examples=40, deadline=None)
@given(
    degree=st.integers(0, 6),
    seed=st.integers(0, 2 ** 31),
)
def test_property_interpolation_roundtrip(degree, seed):
    rng = random.Random(seed)
    poly = Polynomial.random(F, degree, rng=rng)
    points = [(F(i), poly.evaluate(i)) for i in range(1, degree + 2)]
    assert lagrange_interpolate(F, points) == poly


# -- kernel-native coefficient storage -----------------------------------------


def test_native_storage_boxes_lazily():
    poly = Polynomial(F, [3, 1, 4])
    assert poly._boxed is None  # no FieldElement built yet
    assert poly.residues == [3, 1, 4]
    assert poly.native == [3, 1, 4]
    assert poly._boxed is None  # residue reads must not box
    boxed = poly.coeffs
    assert boxed == [F(3), F(1), F(4)]
    assert poly.coeffs is boxed  # cached after first touch


def test_from_native_list_and_tuple_strip_trailing_zeros():
    for values in ([7, 0, 5, 0, 0], (7, 0, 5, 0, 0)):
        poly = Polynomial.from_native(F, values)
        assert poly.residues == [7, 0, 5]
        assert poly == Polynomial(F, [7, 0, 5])
    assert Polynomial.from_native(F, [0, 0, 0]).is_zero()
    assert Polynomial.from_native(F, []).is_zero()


def test_from_native_accepts_kernel_rows():
    np = pytest.importorskip("numpy")
    row = np.array([2, 9, 0, 0], dtype=np.uint64)
    poly = Polynomial.from_native(F, row)
    # Residues materialize lazily from the native row and match the
    # equivalent list-backed polynomial in every observable way.
    assert poly.residues == [2, 9]
    assert poly == Polynomial(F, [2, 9])
    assert poly.eval_int(3) == (2 + 9 * 3) % F.modulus
    zero_row = np.zeros(4, dtype=np.uint64)
    assert Polynomial.from_native(F, zero_row).is_zero()


def test_from_native_rows_matches_per_row_constructor():
    matrix = [[1, 2, 0], [0, 0, 0], [5, 0, 7], [4, 0, 0]]
    batch = Polynomial.from_native_rows(F, matrix)
    singles = [Polynomial.from_native(F, list(row)) for row in matrix]
    assert batch == singles
    assert [p.residues for p in batch] == [[1, 2], [0], [5, 0, 7], [4]]
    np = pytest.importorskip("numpy")
    nd_batch = Polynomial.from_native_rows(
        F, np.array(matrix, dtype=np.uint64)
    )
    assert nd_batch == singles


def test_init_same_field_fast_path_and_foreign_field_rejection():
    # Already-boxed elements of the same field pass residues straight through.
    poly = Polynomial(F, [F(11), 22, F(33)])
    assert poly.residues == [11, 22, 33]
    from repro.field.gf import GF

    other = GF(97)
    with pytest.raises(ValueError):
        Polynomial(F, [other(1)])
