"""Regression tests for the transport fault-delivery contract.

Wire testing the transports exposed three bugs, each pinned here:

1. ``InProcessTransport.deliver`` stranded a reorder-held message when the
   *next* delivery to that recipient was a self-message or was dropped --
   the hold must be released on **every** subsequent delivery attempt.
2. Crash-stop was inconsistent about in-flight traffic: a message handed to
   the transport before the crash is on the network and must be delivered
   on every path (regular delivery, held-message release, and
   ``flush_reordered``); a message held *for* a crashed recipient is
   discarded with the rest of its inbox.
3. ``AsyncioBackend`` silently ignored ``time_scale`` when a prebuilt clock
   instance was passed -- it must raise, matching ``make_backend``'s rule
   for prebuilt instances.
"""

from __future__ import annotations

import random

import pytest

from repro.runtime import AsyncioBackend, InProcessTransport, TransportFaults
from repro.runtime.api import RealClock, VirtualClock
from repro.runtime.transport import DELIVER, DROP, DUPLICATE, HOLD, FaultSchedule
from repro.sim.messages import Message

from test_scenario_matrix import Scenario, canonical_outputs
from test_runtime import run_preprocessing_on


class ScriptedFaults:
    """``decide`` pops from a fixed script (then delivers); logs every call."""

    def __init__(self, script):
        self.script = list(script)
        self.log = []

    def decide(self, sender, recipient, seq, can_hold):
        decision = self.script.pop(0) if self.script else DELIVER
        if decision == HOLD and not can_hold:
            decision = DELIVER
        self.log.append((decision, sender, recipient, seq))
        return decision


def msg(sender, recipient, tag="t", payload=0):
    return Message(sender, recipient, tag, payload, 0.0)


def inbox_payloads(transport, party_id):
    queue = transport.inbox(party_id)
    out = []
    while not queue.empty():
        message, _handled = queue.get_nowait()
        out.append((message.sender, message.payload))
    return out


def make_transport(script, parties=(1, 2, 3)):
    transport = InProcessTransport(faults=ScriptedFaults(script))
    transport.open(list(parties))
    return transport


# -- bug 1: held messages must be released on *every* delivery attempt ------

def test_held_message_released_by_self_delivery():
    transport = make_transport([HOLD])
    assert transport.deliver(msg(1, 2, payload="held")) == []
    pairs = transport.deliver(msg(2, 2, payload="self"))
    # Self-delivery is exempt from faults but still counts as a delivery
    # attempt to party 2: the held message is released right behind it.
    assert [pair[0].payload for pair in pairs] == ["self", "held"]
    assert inbox_payloads(transport, 2) == [(2, "self"), (1, "held")]


def test_held_message_released_after_drop():
    transport = make_transport([HOLD, DROP])
    assert transport.deliver(msg(1, 2, payload="held")) == []
    pairs = transport.deliver(msg(3, 2, payload="dropped"))
    # The second message is lost, but its delivery attempt still releases
    # the held one -- a hold is an adjacent swap, never an unbounded park.
    assert [pair[0].payload for pair in pairs] == ["held"]
    assert inbox_payloads(transport, 2) == [(1, "held")]


def test_held_message_released_behind_duplicate():
    transport = make_transport([HOLD, DUPLICATE])
    transport.deliver(msg(1, 2, payload="held"))
    pairs = transport.deliver(msg(3, 2, payload="dup"))
    assert [pair[0].payload for pair in pairs] == ["dup", "dup", "held"]


def test_at_most_one_hold_per_recipient():
    transport = make_transport([HOLD, HOLD])
    transport.deliver(msg(1, 2, payload="first"))
    faults = transport.faults
    pairs = transport.deliver(msg(3, 2, payload="second"))
    # can_hold was False for the second decide, so the scripted HOLD
    # degraded to DELIVER and the first hold was released behind it.
    assert faults.log[1][0] == DELIVER
    assert [pair[0].payload for pair in pairs] == ["second", "first"]


# -- bug 2: crash-stop vs in-flight traffic ---------------------------------

def test_in_flight_message_from_crashed_sender_is_delivered():
    transport = make_transport([])
    # Party 1 handed the message to the transport, then crashed: the packet
    # is on the network and still lands.
    transport.crash(1)
    pairs = transport.deliver(msg(1, 2, payload="in-flight"))
    assert [pair[0].payload for pair in pairs] == ["in-flight"]


def test_held_message_from_crashed_sender_still_released():
    transport = make_transport([HOLD])
    transport.deliver(msg(1, 2, payload="held"))
    transport.crash(1)
    released = transport.flush_reordered()
    assert [pair[0].payload for pair in released] == ["held"]


def test_held_message_for_crashed_recipient_is_discarded():
    transport = make_transport([HOLD])
    transport.deliver(msg(1, 2, payload="held"))
    transport.crash(2)
    assert transport.flush_reordered() == []
    assert transport.deliver(msg(3, 2, payload="late")) == []
    assert inbox_payloads(transport, 2) == []


# -- the schedule / rng fault models ----------------------------------------

def test_fault_schedule_is_order_independent_and_logged():
    a = FaultSchedule(7, duplicate_probability=0.2, reorder_probability=0.2,
                      drop_probability=0.2)
    b = FaultSchedule(7, duplicate_probability=0.2, reorder_probability=0.2,
                      drop_probability=0.2)
    keys = [(1, 2, 0), (1, 2, 1), (2, 1, 0), (3, 1, 0), (1, 3, 4)]
    forward = [a.decide(s, r, q, can_hold=True) for s, r, q in keys]
    backward = [b.decide(s, r, q, can_hold=True) for s, r, q in reversed(keys)]
    assert forward == list(reversed(backward))
    assert a.log == [(d, s, r, q) for d, (s, r, q) in zip(forward, keys)]
    assert set(forward) > {DELIVER}  # the windows actually fire at these probs


def test_fault_schedule_respects_can_hold():
    schedule = FaultSchedule(0, reorder_probability=1.0)
    assert schedule.decide(1, 2, 0, can_hold=True) == HOLD
    assert schedule.decide(1, 2, 1, can_hold=False) == DELIVER


def test_transport_faults_requires_injected_rng():
    with pytest.raises(TypeError):
        TransportFaults(None, drop_probability=0.1)


# -- end-to-end: total reordering keeps liveness and outputs -----------------

def test_preprocessing_survives_total_reordering():
    """reorder_probability=1.0 holds every other message on every channel;
    before the release-on-every-attempt fix, a self-delivery or crash could
    strand a held message and wedge the run."""
    scenario = Scenario(4, 1, 0, "honest", "sync", None)
    baseline = run_preprocessing_on(scenario, "asyncio")
    faulty = run_preprocessing_on(
        scenario,
        "asyncio",
        transport=InProcessTransport(
            faults=TransportFaults(random.Random(5), reorder_probability=1.0)
        ),
    )
    assert faulty.all_honest_done()
    assert canonical_outputs(faulty) == canonical_outputs(baseline)


# -- bug 3: prebuilt clock + time_scale must raise ---------------------------

def test_time_scale_alongside_prebuilt_clock_raises():
    with pytest.raises(ValueError, match="time_scale"):
        AsyncioBackend(4, clock=RealClock(0.01), time_scale=0.02)
    with pytest.raises(ValueError, match="time_scale"):
        AsyncioBackend(4, clock=VirtualClock(), time_scale=0.5)


def test_prebuilt_clock_without_time_scale_is_fine():
    backend = AsyncioBackend(4, clock=RealClock(0.01))
    assert backend.clock.time_scale == 0.01
    backend = AsyncioBackend(4, clock="real", time_scale=0.25)
    assert backend.clock.time_scale == 0.25
