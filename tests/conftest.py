"""Shared fixtures for the test suite."""

import os
import random
import signal
import sys

import pytest

from repro.field import GF, default_field

# Allow plain `import protocol_helpers` from the test modules regardless of
# how pytest was invoked.
_TESTS_DIR = os.path.dirname(__file__)
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)


@pytest.fixture(scope="session")
def field() -> GF:
    """The default 61-bit prime field used across the suite."""
    return default_field()


@pytest.fixture()
def rng() -> random.Random:
    """A deterministic RNG so failures are reproducible."""
    return random.Random(0xDECADE)


@pytest.fixture(scope="session")
def small_field() -> GF:
    """A small prime field (p = 257) for exhaustive-ish checks."""
    return GF(257)


@pytest.fixture(autouse=True)
def _tcp_test_timeout(request):
    """Hard wall-clock cap for ``tcp``/``service``/``calibrate``/``chaos`` tests.

    Socket tests must never hang the tier-1 run (a lost stop frame or a
    wedged child process would otherwise block pytest forever, since there
    is no pytest-timeout plugin in this environment), the long-lived
    service tests drive open-ended streams (refill loops, rejoin retries)
    where a bug could spin instead of fail, and the calibration smoke test
    spawns a measuring subprocess whose runtime scales with machine noise.
    SIGALRM fires in the main thread, interrupting even a blocked
    ``asyncio.run`` or ``subprocess.run``.
    """
    marker = (
        request.node.get_closest_marker("tcp")
        or request.node.get_closest_marker("service")
        or request.node.get_closest_marker("calibrate")
        or request.node.get_closest_marker("chaos")
    )
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    defaults = {"tcp": 120, "service": 300, "calibrate": 300, "chaos": 600}
    default_seconds = defaults[marker.name]
    seconds = int(marker.kwargs.get("timeout", default_seconds))

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"{marker.name} test exceeded its {seconds}s wall-clock cap "
            "(likely a hung socket/party process or a spinning stream loop)"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
