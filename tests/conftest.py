"""Shared fixtures for the test suite."""

import os
import random
import sys

import pytest

from repro.field import GF, default_field

# Allow plain `import protocol_helpers` from the test modules regardless of
# how pytest was invoked.
_TESTS_DIR = os.path.dirname(__file__)
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)


@pytest.fixture(scope="session")
def field() -> GF:
    """The default 61-bit prime field used across the suite."""
    return default_field()


@pytest.fixture()
def rng() -> random.Random:
    """A deterministic RNG so failures are reproducible."""
    return random.Random(0xDECADE)


@pytest.fixture(scope="session")
def small_field() -> GF:
    """A small prime field (p = 257) for exhaustive-ish checks."""
    return GF(257)
