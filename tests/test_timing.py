"""Tests for the timing helpers and the protocol time-bound functions."""

import pytest

from repro.ba.aba import aba_nominal_time_bound, aba_unanimous_time_bound
from repro.ba.bobw import ba_time_bound
from repro.ba.sba import sba_time_bound
from repro.broadcast.acast import acast_time_bound
from repro.broadcast.bc import bc_time_bound
from repro.acs.acs import acs_time_bound
from repro.mpc.protocol import cir_eval_time_bound
from repro.sharing.vss import vss_time_bound
from repro.sharing.wps import wps_time_bound
from repro.timing import epsilon, next_multiple_of_delta
from repro.triples.preprocessing import preprocessing_time_bound
from repro.triples.sharing import triple_sharing_time_bound


def test_epsilon_is_small_fraction_of_delta():
    assert epsilon(1.0) == pytest.approx(0.001)
    assert epsilon(10.0) == pytest.approx(0.01)


def test_next_multiple_of_delta_basic():
    assert next_multiple_of_delta(0.0, 1.0) == pytest.approx(0.0)
    assert next_multiple_of_delta(0.5, 1.0) == pytest.approx(1.0)
    assert next_multiple_of_delta(1.0, 1.0) == pytest.approx(1.0)
    assert next_multiple_of_delta(2.3, 1.0) == pytest.approx(3.0)


def test_next_multiple_of_delta_tolerates_epsilon_drift():
    # A time just past a multiple (within the tie-breaking epsilon) does not
    # cost a whole extra round.
    value = next_multiple_of_delta(3.0005, 1.0)
    assert value <= 3.0005 + 1e-9
    # Far past the multiple, the next one is used.
    assert next_multiple_of_delta(3.01, 1.0) == pytest.approx(4.0)


def test_time_bounds_are_monotone_in_n_and_t():
    assert sba_time_bound(4, 1, 1.0) == pytest.approx(6.0)
    assert sba_time_bound(7, 2, 1.0) == pytest.approx(9.0)
    assert bc_time_bound(7, 2, 1.0) > bc_time_bound(4, 1, 1.0)
    assert ba_time_bound(4, 1, 1.0) > bc_time_bound(4, 1, 1.0)
    assert wps_time_bound(4, 1, 1.0) > 2 * bc_time_bound(4, 1, 1.0)
    assert vss_time_bound(4, 1, 1.0) > wps_time_bound(4, 1, 1.0)
    assert acs_time_bound(4, 1, 1.0) > vss_time_bound(4, 1, 1.0)
    assert triple_sharing_time_bound(4, 1, 1.0) > acs_time_bound(4, 1, 1.0)
    assert preprocessing_time_bound(4, 1, 1.0) > triple_sharing_time_bound(4, 1, 1.0)


def test_time_bounds_scale_with_delta():
    assert acast_time_bound(2.0) == pytest.approx(6.0)
    assert bc_time_bound(4, 1, 2.0) == pytest.approx(2.0 * bc_time_bound(4, 1, 1.0), rel=0.01)
    assert aba_nominal_time_bound(2.0) == 2 * aba_nominal_time_bound(1.0)
    assert aba_unanimous_time_bound(3.0) == 3 * aba_unanimous_time_bound(1.0)


def test_cir_eval_time_bound_grows_with_depth():
    shallow = cir_eval_time_bound(4, 1, 1, 1.0)
    deep = cir_eval_time_bound(4, 1, 10, 1.0)
    assert deep - shallow == pytest.approx(9.0, abs=0.01)


def test_sharded_time_bounds_scale_with_round_count():
    from repro.triples.preprocessing import shard_bounds, triples_per_dealer
    from repro.triples.sharing import triple_sharing_time_bound as t_tripsh

    # c_m=3 at n=4/ts=1 means a 3-triple bank: shard_size=1 gives 3 rounds.
    rounds = len(shard_bounds(triples_per_dealer(4, 1, 3), 1))
    assert rounds == 3
    unsharded = preprocessing_time_bound(4, 1, 1.0, shard_size=None, c_m=3)
    sharded = preprocessing_time_bound(4, 1, 1.0, shard_size=1, c_m=3)
    assert sharded > unsharded
    assert sharded - unsharded == pytest.approx(
        (rounds - 1) * t_tripsh(4, 1, 1.0), rel=0.01
    )
    # The sharded bound propagates into the circuit-evaluation bound.
    assert cir_eval_time_bound(4, 1, 1, 1.0, shard_size=1, c_m=3) > cir_eval_time_bound(
        4, 1, 1, 1.0
    )
