"""The long-lived MPC service (the ``service`` marker).

Covers the service layer end to end on the deterministic sim backend:

* reservoir watermark arithmetic (deposit/take/truncate/restore),
* snapshot wire-codec roundtrips and the format-version gate,
* the headline robustness property -- **checkpoint→restore continues
  bit-identically** to the uninterrupted run (same outputs, same message
  counts, same rng states, same clock),
* crash-rejoin recovery: a party crashes mid-preprocessing, the stream keeps
  running degraded, the party rejoins from the latest snapshot, and the
  post-rejoin outputs equal the uninterrupted seeded run's,
* explicit degradation: backpressure, rejoin timeout (re-crash), refusing
  non-degraded streams, and the engine-level unknown-party-id validation.
"""

from __future__ import annotations

import pytest

from repro.circuits import multiplication_circuit
from repro.field import default_field
from repro.mpc import run_mpc
from repro.mpc.engine import CircuitEvaluationFactory
from repro.runtime.wire import encode_payload
from repro.service import (
    BackpressureError,
    CheckpointStore,
    MpcService,
    PartialResultError,
    PartyCrashedError,
    RejoinTimeoutError,
    ReservoirDrainedError,
    ServiceClosedError,
    ServiceConfig,
    ServiceSnapshot,
    SnapshotVersionError,
    TripleReservoir,
)

pytestmark = pytest.mark.service

FIELD = default_field()


def small_config(**overrides) -> ServiceConfig:
    """Low watermarks so tests exercise refills without big preprocessing."""
    defaults = dict(low_watermark=2, high_watermark=6)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def product_circuit(n: int = 4):
    return multiplication_circuit(FIELD, n)


INPUTS = {1: 3, 2: 5, 3: 7, 4: 11}
PRODUCT = 3 * 5 * 7 * 11


def make_triple(value: int):
    return (FIELD(value), FIELD(value + 1), FIELD(value + 2))


# -- reservoir unit behaviour -------------------------------------------------

class TestTripleReservoir:
    def test_deposit_take_watermarks(self):
        res = TripleReservoir([1, 2], low_watermark=1, high_watermark=4)
        base = res.begin_round()
        assert base == 0
        for pid in (1, 2):
            res.deposit(pid, base, [make_triple(10), make_triple(20)])
        assert res.available([1, 2]) == 2
        assert res.watermarks() == {"consumed": 0, "produced": 2}
        taken = res.take([1, 2], 1)
        assert [int(t[0]) for t in taken[1]] == [10]
        assert res.watermarks() == {"consumed": 1, "produced": 2}

    def test_deposit_must_be_contiguous(self):
        res = TripleReservoir([1], low_watermark=1, high_watermark=4)
        res.deposit(1, 0, [make_triple(1)])
        with pytest.raises(ValueError, match="does not extend"):
            res.deposit(1, 5, [make_triple(2)])

    def test_take_raises_when_drained(self):
        res = TripleReservoir([1, 2], low_watermark=1, high_watermark=4)
        res.deposit(1, 0, [make_triple(1)])
        with pytest.raises(ReservoirDrainedError) as info:
            res.take([1, 2], 1)
        assert info.value.needed == 1 and info.value.available == 0

    def test_crash_rejoin_reconciliation_arithmetic(self):
        res = TripleReservoir([1, 2], low_watermark=1, high_watermark=8)
        for pid in (1, 2):
            res.deposit(pid, 0, [make_triple(i) for i in range(4)])
        # party 2 snapshots with 4 entries, then two more are produced ...
        first_seq, snap = res.snapshot_party(2)
        snap_produced = res.produced
        for pid in (1, 2):
            res.deposit(pid, 4, [make_triple(i) for i in (4, 5)])
        # ... one triple is consumed, then party 2 crashes.
        res.take([1, 2], 1)
        res.clear_party(2)
        # Rejoin: survivors drop entries the snapshot never saw (seqs 4, 5),
        # the rejoiner drops the consumed seq 0.
        discarded = res.truncate_from(snap_produced)
        assert discarded == 2
        dropped = res.restore_party(2, first_seq, snap)
        assert dropped == 1
        assert res.available([1, 2]) == 3  # seqs 1, 2, 3 usable again
        assert res.produced == snap_produced
        taken = res.take([1, 2], 3)
        assert [int(t[0]) for t in taken[2]] == [1, 2, 3]


# -- snapshot codec -----------------------------------------------------------

class TestSnapshotCodec:
    def test_snapshot_roundtrip(self):
        svc = MpcService(4, 1, 0, config=small_config(), seed=11)
        svc.evaluate(product_circuit(), INPUTS)
        version = svc.checkpoint()
        snap = svc.store.load(version)
        clone = ServiceSnapshot.decode(snap.encode())
        assert clone.now == snap.now
        assert clone.eval_seq == snap.eval_seq
        assert clone.backend_rng_state == snap.backend_rng_state
        for pid in range(1, 5):
            a, b = snap.parties[pid], clone.parties[pid]
            assert a.rng_state == b.rng_state
            assert a.reservoir_first_seq == b.reservoir_first_seq
            assert a.reservoir_triples == b.reservoir_triples
        assert clone.results == snap.results

    def test_version_gate(self):
        blob = encode_payload({"version": 99})
        with pytest.raises(SnapshotVersionError) as info:
            ServiceSnapshot.decode(blob)
        assert info.value.found == 99


# -- checkpoint/restore: bit-identical continuation ---------------------------

class TestCheckpointRestore:
    def test_restore_continues_bit_identically(self):
        """The tentpole property: a restored service replays the exact event
        sequence the uninterrupted service runs -- same outputs, same message
        counts, same final rng states, same simulated clock."""
        cfg = small_config()
        circuit = product_circuit()
        streams = [{1: 3 + k, 2: 5, 3: 7, 4: 11} for k in range(8)]

        original = MpcService(4, 1, 0, config=cfg, seed=7)
        for k in range(4):
            original.evaluate(circuit, streams[k])
        version = original.checkpoint()
        sent_at_checkpoint = original.sim.metrics.messages_sent
        tail = [original.evaluate(circuit, streams[k]) for k in range(4, 8)]
        sent_tail = original.sim.metrics.messages_sent - sent_at_checkpoint

        restored = MpcService.restore(original.store, version=version, config=cfg)
        assert restored.sim.now == original.store.load(version).now
        replay = [restored.evaluate(circuit, streams[k]) for k in range(4, 8)]

        assert [r.output_values for r in replay] == [r.output_values for r in tail]
        assert [r.sim_time for r in replay] == [r.sim_time for r in tail]
        assert restored.sim.metrics.messages_sent == sent_tail
        assert restored.sim.now == original.sim.now
        assert restored.sim.rng.getstate() == original.sim.rng.getstate()
        for pid in range(1, 5):
            assert (restored.sim.parties[pid].rng.getstate()
                    == original.sim.parties[pid].rng.getstate())
        assert restored.reservoir.watermarks() == original.reservoir.watermarks()

    def test_restored_results_log_replays_history(self):
        svc = MpcService(4, 1, 0, config=small_config(), seed=1)
        first = svc.evaluate(product_circuit(), INPUTS)
        svc.checkpoint()
        restored = MpcService.restore(svc.store, config=small_config())
        assert [r.output_values for r in restored.results] == [first.output_values]

    def test_checkpoint_requires_all_parties_live(self):
        svc = MpcService(4, 1, 0, config=small_config(), seed=2)
        svc.crash_party(4)
        with pytest.raises(PartyCrashedError, match="checkpoint"):
            svc.checkpoint()

    def test_auto_checkpoint_cadence(self):
        svc = MpcService(4, 1, 0, config=small_config(checkpoint_every=2), seed=3)
        for _ in range(4):
            svc.evaluate(product_circuit(), INPUTS)
        assert svc.store.versions() == [1, 2]


# -- crash + rejoin -----------------------------------------------------------

class TestCrashRejoin:
    def test_crash_mid_preprocessing_rejoin_completes(self):
        """The scenario-matrix cell the issue asks for: a party crashes in
        the middle of a background refill round (and mid-evaluation), the
        stream keeps going degraded, the party rejoins from the snapshot,
        and the run completes clean with an aligned reservoir."""
        # low=8 > post-eval-0 level forces eval 1 to kick a *background*
        # refill round; the scheduled crash then lands inside its ΠTripSh.
        cfg = small_config(low_watermark=8, high_watermark=10)
        svc = MpcService(4, 1, 0, config=cfg, seed=13)
        svc.evaluate(product_circuit(), INPUTS)
        svc.checkpoint()
        assert svc.reservoir.available(svc.live_parties()) < cfg.low_watermark
        svc.crash_party(3, at_time=svc.now + 3 * svc.delta)
        degraded = svc.evaluate(product_circuit(), INPUTS)
        assert svc._inflight is not None  # the refill round was mid-flight
        assert degraded.degraded and 3 not in degraded.parties
        report = svc.rejoin_party(3)
        assert report.party_id == 3 and report.attempts >= 1
        assert report.sim_recovery_time > 0
        # The settled round's post-snapshot deposits were truncated away.
        assert report.triples_discarded > 0
        clean = svc.evaluate(product_circuit(), INPUTS)
        assert not clean.degraded
        assert clean.output_values == [PRODUCT]

    def test_rejoin_abandons_stalled_refill_round(self):
        """A refill round that can no longer complete (too many parties
        down) is abandoned at rejoin: its late output must never deposit
        with a stale sequence base and misalign the reservoir heads."""
        cfg = small_config(low_watermark=8, high_watermark=10)
        svc = MpcService(4, 1, 0, config=cfg, seed=14)
        svc.evaluate(product_circuit(), INPUTS)
        svc.checkpoint()
        degraded_before = svc.evaluate(product_circuit(), INPUTS)
        assert not degraded_before.degraded
        assert svc._inflight is not None  # background refill in flight
        svc.crash_party(3)
        svc.crash_party(4)  # 2 > t_s: the in-flight round can never finish
        report = svc.rejoin_party(4)  # quorum 2 is met by peers 1 and 2
        assert report.party_id == 4
        assert svc._abandoned_rounds  # the stalled round was written off
        degraded = svc.evaluate(product_circuit(), INPUTS)  # 3 still down
        assert degraded.degraded and 3 not in degraded.parties

    def test_crash_mid_him_refill_abandons_round_and_discards_late_deposits(self):
        """Satellite regression: a refill round running the HIM pipeline
        (``ServiceConfig(offline="him")``) that is abandoned mid-extraction
        must behave exactly like the stalled ΠTripSh round -- written off at
        rejoin, its late output discarded by the deposit guard, reservoir
        heads still aligned -- and the service must then refill and evaluate
        cleanly with HIM triples."""
        from repro.triples import HimPreprocessing

        # shard_size=1 splits the HIM refill into many sequential extraction
        # rounds, guaranteeing the round is still mid-extraction when the
        # crashes land (an unsharded HIM round is fast enough to finish
        # inside the evaluation window).
        # The settle pass waits up to stall_margin x the (sharded, so long)
        # nominal HIM bound before writing the round off; the rejoin deadline
        # must outlast that wait or the handshake times out spuriously.
        cfg = small_config(
            low_watermark=8,
            high_watermark=10,
            offline="him",
            shard_size=1,
            rejoin_deadline=500_000.0,
        )
        svc = MpcService(4, 1, 0, config=cfg, seed=14)
        svc.evaluate(product_circuit(), INPUTS)
        svc.checkpoint()
        degraded_before = svc.evaluate(product_circuit(), INPUTS)
        assert not degraded_before.degraded
        assert svc._inflight is not None  # background HIM refill in flight
        assert all(
            isinstance(inst, HimPreprocessing) for inst in svc._inflight.values()
        )
        abandoned_round = svc._inflight_round
        svc.crash_party(3)
        svc.crash_party(4)  # 2 > t_s: the in-flight HIM round can never finish
        report = svc.rejoin_party(4)  # quorum 2 is met by peers 1 and 2
        assert report.party_id == 4
        assert abandoned_round in svc._abandoned_rounds
        produced_after_rejoin = svc.reservoir.produced
        degraded = svc.evaluate(product_circuit(), INPUTS)  # 3 still down
        assert degraded.degraded and 3 not in degraded.parties
        # The written-off round's late deposits were dropped by the guard:
        # whatever the reservoir gained came from fresh post-rejoin rounds,
        # and the heads stayed aligned for the live parties throughout.
        assert svc.reservoir.produced >= produced_after_rejoin
        report3 = svc.rejoin_party(3)
        assert report3.party_id == 3
        clean = svc.evaluate(product_circuit(), INPUTS)
        assert not clean.degraded
        assert clean.output_values == [PRODUCT]

    def test_crash_rejoin_outputs_match_uninterrupted_run(self):
        """Acceptance: the seeded crash-rejoin stream produces outputs
        identical to the uninterrupted seeded run (triples are random masks,
        so outputs depend only on the inputs and the common subset)."""
        cfg = small_config()
        circuit = product_circuit()
        streams = [{1: 2 + k, 2: 5, 3: 7, 4: 11} for k in range(6)]

        plain = MpcService(4, 1, 0, config=cfg, seed=21)
        expected = [plain.evaluate(circuit, s).output_values for s in streams]

        faulty = MpcService(4, 1, 0, config=cfg, seed=21)
        rocky = []
        for k, stream_inputs in enumerate(streams):
            if k == 3:
                faulty.checkpoint()
                faulty.crash_party(4)
                faulty.rejoin_party(4)
            rocky.append(faulty.evaluate(circuit, stream_inputs).output_values)

        assert rocky == expected
        assert faulty.recoveries[0].party_id == 4

    def test_rejoin_times_out_without_quorum(self):
        """With 3 of 4 parties down, one live peer cannot meet the 2·t_s
        admission quorum: the handshake retries with backoff, misses the
        deadline, the party is re-crashed, and the typed error reports it."""
        cfg = small_config(rejoin_max_attempts=3, rejoin_deadline=40.0)
        svc = MpcService(4, 1, 0, config=cfg, seed=5)
        svc.evaluate(product_circuit(), INPUTS)
        svc.checkpoint()
        for pid in (2, 3, 4):
            svc.crash_party(pid)
        with pytest.raises(RejoinTimeoutError) as info:
            svc.rejoin_party(2)
        assert info.value.attempts == 3
        assert svc.crashed_parties == [2, 3, 4]

    def test_rejoin_discards_unusable_triples(self):
        """Triples produced after the snapshot are unusable once a party's
        shares die with it; the recovery report accounts the discard."""
        cfg = small_config(low_watermark=2, high_watermark=8)
        svc = MpcService(4, 1, 0, config=cfg, seed=17)
        svc.evaluate(product_circuit(), INPUTS)  # fills toward high
        svc.checkpoint()
        svc.evaluate(product_circuit(), INPUTS)  # may refill past the snapshot
        produced_before_crash = svc.reservoir.produced
        svc.crash_party(2)
        report = svc.rejoin_party(2)
        assert svc.reservoir.produced <= produced_before_crash
        assert report.triples_discarded >= 0
        # The reservoir is aligned and usable again after reconciliation.
        clean = svc.evaluate(product_circuit(), INPUTS)
        assert clean.output_values == [PRODUCT]


# -- explicit degradation ------------------------------------------------------

class TestDegradation:
    def test_backpressure(self):
        svc = MpcService(4, 1, 0, config=small_config(max_pending=2), seed=4)
        circuit = product_circuit()
        svc.submit(circuit, INPUTS)
        svc.submit(circuit, INPUTS)
        with pytest.raises(BackpressureError) as info:
            svc.submit(circuit, INPUTS)
        assert info.value.pending == 2
        assert len(svc.process()) == 2  # draining clears the pressure
        svc.submit(circuit, INPUTS)

    def test_disallowed_degraded_stream_raises_partial_result(self):
        svc = MpcService(4, 1, 0, config=small_config(allow_degraded=False), seed=6)
        circuit = product_circuit()
        svc.submit(circuit, INPUTS)
        svc.checkpoint()
        svc.crash_party(4)
        svc.submit(circuit, INPUTS)
        with pytest.raises(PartialResultError) as info:
            svc.process()
        assert isinstance(info.value.cause, PartyCrashedError)
        assert info.value.failed_index == 0
        # The failed submission stays queued; after rejoin it succeeds.
        svc.rejoin_party(4)
        results = svc.process()
        assert [r.output_values for r in results] == [[PRODUCT], [PRODUCT]]

    def test_crash_tolerance_exceeded_is_typed(self):
        svc = MpcService(4, 1, 0, config=small_config(), seed=8)
        svc.crash_party(3)
        svc.crash_party(4)
        with pytest.raises(PartialResultError) as info:
            svc.evaluate(product_circuit(), INPUTS)
        assert isinstance(info.value.cause, PartyCrashedError)
        assert "exceeded" in str(info.value.cause)

    def test_closed_service_refuses_submissions(self):
        svc = MpcService(4, 1, 0, config=small_config(), seed=9)
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(product_circuit(), INPUTS)


# -- engine input validation (satellite: unknown party ids) -------------------

class TestPartyIdValidation:
    def test_run_mpc_rejects_unknown_input_ids(self):
        circuit = product_circuit()
        with pytest.raises(ValueError, match=r"unknown party ids in inputs: \[0\]"):
            run_mpc(circuit, {0: 3, 2: 5}, n=4, ts=1, ta=0)

    def test_run_mpc_rejects_unknown_corrupt_ids(self):
        from repro.sim.adversary import CrashBehavior

        circuit = product_circuit()
        with pytest.raises(ValueError, match=r"unknown party ids in corrupt: \[7\]"):
            run_mpc(circuit, INPUTS, n=4, ts=1, ta=0, corrupt={7: CrashBehavior()})

    def test_factory_rejects_unknown_input_ids(self):
        with pytest.raises(ValueError, match="unknown party ids"):
            CircuitEvaluationFactory(product_circuit(), 1, 0, {5: 1}, n=4)

    def test_service_submit_rejects_unknown_input_ids(self):
        svc = MpcService(4, 1, 0, config=small_config(), seed=10)
        with pytest.raises(ValueError, match="unknown party ids"):
            svc.submit(product_circuit(), {1: 3, 9: 4})

    def test_non_integer_ids_rejected(self):
        with pytest.raises(ValueError, match="unknown party ids"):
            run_mpc(product_circuit(), {"1": 3}, n=4, ts=1, ta=0)


# -- stream hygiene -----------------------------------------------------------

class TestStreamHygiene:
    def test_instances_are_retired(self):
        """A long stream must not accumulate one instance tree per eval."""
        cfg = small_config(retire_lag=1)
        svc = MpcService(4, 1, 0, config=cfg, seed=12)
        circuit = product_circuit()
        counts = []
        for _ in range(6):
            svc.evaluate(circuit, INPUTS)
            counts.append(len(svc.sim.parties[1].instances))
        # Steady state: the live tail's instances, not a growing history.
        assert counts[-1] <= counts[1] + 5
        tags = list(svc.sim.parties[1].instances)
        assert not any(tag.startswith("eval[0]") for tag in tags)
