"""The gmpy2 kernel's op layer, testable with or without gmpy2 installed.

:class:`repro.field.kernels.Gmpy2Kernel` accepts an injected ``module`` so
its mpz code paths (element-wise mul, Montgomery batch inversion, dot,
``rowmat``/``rows_dot``/``mat_rows``/``mat_vecs``) can be exercised against
the int-residue reference kernel even on machines without gmpy2 -- the
stand-in below implements ``mpz``/``invert`` with plain-int semantics, so
every branch of the gmpy2 kernel runs, only the scalar type differs.  The
equivalence properties run at a >=64-bit modulus (the Mersenne prime
2^89 - 1, where the kernel's fast paths engage) with edge residues
(0, 1, p-1) and unreduced inputs (>= p) mixed in, and straddle the
``GMPY2_DISPATCH_THRESHOLDS`` crossovers so both the accelerated and the
delegated small-input paths are covered.

The tests at the bottom pin the *real* gmpy2 module and skip cleanly when
it is absent; registry behavior (availability reporting, backend
selection errors) is asserted either way.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.field import GF
from repro.field.array import FieldArray
from repro.field.kernels import (
    GMPY2_DISPATCH_THRESHOLDS,
    GMPY2_MIN_MODULUS_BITS,
    Gmpy2Kernel,
    IntKernel,
    M61,
    available_kernel_backends,
    gmpy2_available,
    set_kernel_backend,
)

#: The Mersenne prime 2^89 - 1: comfortably past GMPY2_MIN_MODULUS_BITS and
#: outside the numpy kernel's limb range.
P89 = (1 << 89) - 1

#: Edge residues mixed into every vector: zero, one, p-1, and unreduced
#: representatives at and above the modulus.
EDGE_VALUES = [0, 1, P89 - 1, P89 - 2, P89, P89 + 1, 2 * P89 - 1]

#: Sizes straddling the elementwise/inverse (32) and matmul (64) crossovers.
SIZES = [1, 8, GMPY2_DISPATCH_THRESHOLDS["elementwise"] - 1,
         GMPY2_DISPATCH_THRESHOLDS["elementwise"] + 5,
         GMPY2_DISPATCH_THRESHOLDS["matmul_ops"] + 9, 200]


class _IntMpz:
    """gmpy2 stand-in: ``mpz`` is ``int``, ``invert`` is a Fermat inverse.

    Semantically faithful for the kernel's usage (prime moduli only):
    ``invert`` raises ZeroDivisionError on non-invertible input exactly
    like ``gmpy2.invert``.
    """

    @staticmethod
    def mpz(value=0):
        return int(value)

    @staticmethod
    def invert(a, m):
        a = int(a) % int(m)
        if a == 0:
            raise ZeroDivisionError("invert() no inverse exists")
        return pow(a, int(m) - 2, int(m))


KERNEL = Gmpy2Kernel(module=_IntMpz)
REF = IntKernel()


def _values(seed: int, size: int, lo: int = 0):
    rng = random.Random(seed)
    out = [rng.randrange(lo, P89) for _ in range(size)]
    for offset, edge in enumerate(EDGE_VALUES):
        if edge % P89 >= lo and size > 0:
            out[(seed + offset) % size] = edge
    return out


def test_min_modulus_gate_delegates_to_int_path():
    """Below GMPY2_MIN_MODULUS_BITS every op must take the inherited int
    path (same results by construction, asserted anyway)."""
    assert M61.bit_length() < GMPY2_MIN_MODULUS_BITS
    a = _values(1, 100)
    b = _values(2, 100)
    assert KERNEL.mul(M61, a, b) == REF.mul(M61, a, b)
    assert not KERNEL._fast(M61, 10**6, "elementwise")
    assert KERNEL._fast(P89, GMPY2_DISPATCH_THRESHOLDS["elementwise"],
                        "elementwise")


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31), size=st.sampled_from(SIZES),
       scalar=st.sampled_from(EDGE_VALUES + [987654321]))
def test_property_mul_matches_int_kernel(seed, size, scalar):
    a = _values(seed, size)
    b = _values(seed + 1, size)
    assert KERNEL.mul(P89, a, b) == REF.mul(P89, a, b)
    assert KERNEL.mul(P89, a, scalar) == REF.mul(P89, a, scalar)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31), size=st.sampled_from(SIZES))
def test_property_batch_inverse_matches_int_kernel(seed, size):
    values = _values(seed, size, lo=1)
    out = KERNEL.batch_inverse(P89, values)
    assert out == REF.batch_inverse(P89, values)
    for v, inv in zip(values, out):
        assert (v % P89) * inv % P89 == 1


@pytest.mark.parametrize("size", SIZES)
def test_batch_inverse_rejects_zero(size):
    values = [1] * size
    values[size // 2] = 0
    with pytest.raises(ZeroDivisionError):
        KERNEL.batch_inverse(P89, values)
    # Unreduced multiples of p are zero residues too.
    values[size // 2] = 2 * P89
    with pytest.raises(ZeroDivisionError):
        KERNEL.batch_inverse(P89, values)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31), size=st.sampled_from(SIZES))
def test_property_dot_matches_int_kernel(seed, size):
    a = _values(seed, size)
    b = _values(seed + 1, size)
    assert KERNEL.dot(P89, a, b) == REF.dot(P89, a, b)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31), rows=st.sampled_from([1, 3, 9, 17]),
       cols=st.sampled_from([1, 4, 12, 40]))
def test_property_matrix_products_match_int_kernel(seed, rows, cols):
    matrix = tuple(tuple(_values(seed + r, cols)) for r in range(rows))
    vectors = [_values(seed + 100 + r, cols) for r in range(rows)]
    data = [_values(seed + 200 + k, rows) for k in range(cols)]
    # mat_rows consumes one data row per product against the whole matrix;
    # the tuple-typed matrix also exercises the interned mpz cache.
    assert KERNEL.mat_rows(P89, matrix, vectors) == REF.mat_rows(
        P89, matrix, vectors
    )
    # Repeat with the same interned matrix: must hit the mpz cache.
    assert KERNEL.mat_rows(P89, matrix, vectors) == REF.mat_rows(
        P89, matrix, vectors
    )
    assert KERNEL.mat_vecs(P89, matrix, data) == REF.mat_vecs(P89, matrix, data)
    row = _values(seed + 300, rows)
    assert KERNEL.rowmat(P89, row, vectors) == REF.rowmat(P89, row, vectors)
    long_row = _values(seed + 400, cols)
    assert KERNEL.rows_dot(P89, vectors, long_row) == REF.rows_dot(
        P89, vectors, long_row
    )


def test_structure_ops_inherited_from_int_kernel():
    """Conversions/add/sub are inherited: native vectors stay int lists."""
    a = _values(5, 80)
    b = _values(6, 80)
    out = KERNEL.add(P89, a, b)
    assert out == REF.add(P89, a, b)
    assert all(type(v) is int for v in out)
    assert all(type(v) is int for v in KERNEL.mul(P89, a, b))
    assert all(type(v) is int for v in KERNEL.batch_inverse(P89, _values(7, 80, lo=1)))


# -- registry behavior (with or without gmpy2) ---------------------------------


def test_registry_reports_gmpy2_consistently():
    assert ("gmpy2" in available_kernel_backends()) == gmpy2_available()
    if not gmpy2_available():
        with pytest.raises(ValueError):
            set_kernel_backend("gmpy2")


# -- the real module, when installed -------------------------------------------


@pytest.mark.skipif(not gmpy2_available(), reason="gmpy2 not installed")
def test_real_gmpy2_field_array_ops_match_int_kernel():
    """FieldArray chains over GF(2^89 - 1) under the real gmpy2 backend."""
    field = GF(P89)
    a_vals = _values(11, 120)
    b_vals = _values(12, 120, lo=1)
    previous = set_kernel_backend("int")
    try:
        a = FieldArray(field, a_vals)
        b = FieldArray(field, b_vals)
        reference = [(a * b).values, (a / b).values, int(a.dot(b))]
        set_kernel_backend("gmpy2")
        a = FieldArray(field, a_vals)
        b = FieldArray(field, b_vals)
        fast = [(a * b).values, (a / b).values, int(a.dot(b))]
    finally:
        set_kernel_backend(previous)
    assert reference == fast
    assert all(type(v) is int for v in fast[0])


@pytest.mark.skipif(not gmpy2_available(), reason="gmpy2 not installed")
def test_real_gmpy2_never_leaks_foreign_scalars():
    """Every residue returned by the real backend is a plain Python int."""
    kernel = Gmpy2Kernel()
    a = _values(13, 90)
    for value in kernel.mul(P89, a, a):
        assert type(value) is int
    for value in kernel.batch_inverse(P89, _values(14, 90, lo=1)):
        assert type(value) is int
