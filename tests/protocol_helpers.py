"""Shared helpers for the protocol-level test modules (WPS, VSS, ACS, MPC)."""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.field import Polynomial, default_field
from repro.sim import ProtocolRunner, SynchronousNetwork
from repro.sim.adversary import Behavior
from repro.sim.network import NetworkModel

FIELD = default_field()


def random_polynomial(degree: int, secret: int, seed: int = 0) -> Polynomial:
    return Polynomial.random(FIELD, degree, constant_term=secret, rng=random.Random(seed))


def run_dealer_protocol(
    protocol_cls,
    n: int,
    ts: int,
    ta: int,
    dealer: int,
    polynomials: Optional[List[Polynomial]],
    network: Optional[NetworkModel] = None,
    corrupt: Optional[Dict[int, Behavior]] = None,
    seed: int = 0,
    max_time: Optional[float] = 50_000.0,
    num_polynomials: Optional[int] = None,
):
    """Run a dealer-based sharing protocol (ΠWPS or ΠVSS) at every party."""
    runner = ProtocolRunner(n, network=network or SynchronousNetwork(), seed=seed,
                            corrupt=corrupt or {})
    count = num_polynomials if num_polynomials is not None else (
        len(polynomials) if polynomials else 1
    )

    def factory(party):
        return protocol_cls(
            party,
            "prot",
            dealer=dealer,
            ts=ts,
            ta=ta,
            num_polynomials=count,
            polynomials=polynomials if party.id == dealer else None,
            anchor=0.0,
        )

    return runner.run(factory, max_time=max_time)


def shares_match_polynomials(result, polynomials: List[Polynomial]) -> bool:
    """Check every honest output against the dealer's polynomials."""
    for pid, shares in result.honest_outputs().items():
        if shares is None or len(shares) != len(polynomials):
            return False
        for poly, share in zip(polynomials, shares):
            if share != poly.evaluate(FIELD.alpha(pid)):
                return False
    return True


def honest_outputs_consistent(result, ts: int) -> bool:
    """For a corrupt dealer: honest outputs must lie on common degree-ts polynomials."""
    from repro.field.polynomial import lagrange_interpolate

    outputs = result.honest_outputs()
    outputs = {pid: shares for pid, shares in outputs.items() if shares is not None}
    if not outputs:
        return True
    lengths = {len(shares) for shares in outputs.values()}
    if len(lengths) != 1:
        return False
    count = lengths.pop()
    pids = sorted(outputs)
    if len(pids) < ts + 1:
        return True
    for index in range(count):
        points = [(FIELD.alpha(pid), outputs[pid][index]) for pid in pids[: ts + 1]]
        poly = lagrange_interpolate(FIELD, points)
        if poly.degree > ts:
            return False
        for pid in pids:
            if outputs[pid][index] != poly.evaluate(FIELD.alpha(pid)):
                return False
    return True
