"""Tests for the phase-king synchronous Byzantine agreement (ΠBGP stand-in)."""

import pytest

from repro.ba.sba import PhaseKingSBA, sba_time_bound
from repro.sim import (
    AsynchronousNetwork,
    CrashBehavior,
    EquivocatingBehavior,
    ProtocolRunner,
    SynchronousNetwork,
    WrongValueBehavior,
)


def _run_sba(n, t, inputs, network=None, corrupt=None, seed=0):
    runner = ProtocolRunner(n, network=network or SynchronousNetwork(), seed=seed,
                            corrupt=corrupt or {})

    def factory(party):
        return PhaseKingSBA(party, "sba", faults=t, value=inputs.get(party.id))

    return runner.run(factory, max_time=10_000.0)


def test_validity_unanimous_inputs():
    result = _run_sba(4, 1, {i: "v" for i in range(1, 5)})
    assert all(v == "v" for v in result.honest_outputs().values())


def test_consistency_mixed_inputs():
    result = _run_sba(4, 1, {1: 1, 2: 1, 3: 0, 4: 0})
    outputs = list(result.honest_outputs().values())
    assert len(outputs) == 4
    assert len(set(map(str, outputs))) == 1


def test_output_time_bound_synchronous():
    n, t = 4, 1
    result = _run_sba(n, t, {i: 1 for i in range(1, n + 1)})
    bound = sba_time_bound(n, t, 1.0)
    assert all(time <= bound + 1e-6 for time in result.honest_output_times().values())


def test_validity_with_crashed_corrupt_party():
    result = _run_sba(4, 1, {i: "x" for i in range(1, 5)}, corrupt={4: CrashBehavior()})
    outputs = result.honest_outputs()
    assert len(outputs) == 3
    assert all(v == "x" for v in outputs.values())


def test_validity_with_lying_corrupt_party():
    # Corrupt party perturbs everything it sends; the three honest parties
    # still agree on their common input.
    result = _run_sba(
        4, 1, {1: 5, 2: 5, 3: 5, 4: 5},
        corrupt={4: WrongValueBehavior(offset=3)},
    )
    outputs = result.honest_outputs()
    assert all(v == 5 for v in outputs.values())


def test_consistency_with_equivocating_party():
    result = _run_sba(
        4, 1, {1: 1, 2: 0, 3: 1, 4: 0},
        corrupt={4: EquivocatingBehavior(group_b=[1, 2])},
    )
    outputs = list(result.honest_outputs().values())
    assert len(set(map(str, outputs))) == 1


def test_larger_committee_n7_t2():
    inputs = {1: "a", 2: "a", 3: "a", 4: "a", 5: "a", 6: "b", 7: "b"}
    result = _run_sba(7, 2, inputs, corrupt={6: CrashBehavior(), 7: CrashBehavior()})
    outputs = result.honest_outputs()
    assert all(v == "a" for v in outputs.values())


def test_guaranteed_liveness_in_asynchronous_network():
    # In an asynchronous network only liveness is guaranteed: every honest
    # party outputs *something* by local time T_BGP.
    result = _run_sba(4, 1, {1: 1, 2: 0, 3: 1, 4: 0},
                      network=AsynchronousNetwork(max_delay=30.0), seed=5)
    assert len(result.honest_outputs()) == 4
    bound = sba_time_bound(4, 1, 1.0)
    assert all(time <= bound + 1e-6 for time in result.honest_output_times().values())


def test_multivalued_inputs_agreement():
    result = _run_sba(4, 1, {1: ("tuple", 1), 2: ("tuple", 1), 3: ("tuple", 1), 4: ("other", 2)})
    outputs = result.honest_outputs()
    assert all(v == ("tuple", 1) for v in outputs.values())


def test_late_input_still_produces_output():
    runner = ProtocolRunner(4, network=SynchronousNetwork())
    instances = {}
    for pid, party in runner.parties.items():
        instances[pid] = PhaseKingSBA(party, "sba", faults=1, value=None)
    for inst in instances.values():
        inst.start()
    # Provide inputs a moment later (before round 1 closes they are unused;
    # liveness still yields an output for every party).
    runner.simulator.run(until=lambda: all(i.has_output for i in instances.values()),
                         max_time=1_000.0)
    assert all(i.has_output for i in instances.values())
