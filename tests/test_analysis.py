"""Tests for the analysis helpers (complexity formulas, power-law fitting)."""

import pytest

from repro.analysis import (
    acast_bits,
    acs_bits,
    bc_bits,
    cir_eval_bits,
    communication_summary,
    fit_power_law,
    paper_cir_eval_time,
    preprocessing_bits,
    vss_bits,
    wps_bits,
)
from repro.sim.simulator import SimulationMetrics
from repro.sim.messages import Message


def test_formula_growth_rates():
    # Doubling n multiplies the leading terms by the expected powers.
    assert acast_bits(8, 100) / acast_bits(4, 100) == pytest.approx(4.0)
    assert bc_bits(8, 100) / bc_bits(4, 100) == pytest.approx(4.0)
    assert wps_bits(8, 1, 61) / wps_bits(4, 1, 61) == pytest.approx(16.0, rel=0.2)
    assert vss_bits(8, 1, 61) / vss_bits(4, 1, 61) == pytest.approx(32.0, rel=0.2)
    assert acs_bits(8, 1, 61) / acs_bits(4, 1, 61) == pytest.approx(64.0, rel=0.2)
    assert preprocessing_bits(8, 1, 1, 61) / preprocessing_bits(4, 1, 1, 61) == pytest.approx(
        128.0, rel=0.2
    )
    assert cir_eval_bits(6, 1, 10, 61) == preprocessing_bits(6, 1, 10, 61)


def test_formula_scales_with_payload():
    assert wps_bits(4, 10, 61) > wps_bits(4, 1, 61)
    assert preprocessing_bits(4, 0, 100, 61) > preprocessing_bits(4, 0, 1, 61)


def test_paper_time_bound_formula():
    assert paper_cir_eval_time(8, 10, 1.0, k=3) == pytest.approx(120 * 8 + 10 + 18 - 20)
    assert paper_cir_eval_time(4, 0, 2.0) == pytest.approx((480 - 20 + 18) * 2.0)


def test_fit_power_law_recovers_exponent():
    xs = [4, 5, 6, 7, 8]
    ys = [3.0 * x ** 2.5 for x in xs]
    exponent, constant = fit_power_law(xs, ys)
    assert exponent == pytest.approx(2.5, abs=0.01)
    assert constant == pytest.approx(3.0, rel=0.05)


def test_fit_power_law_requires_two_points():
    with pytest.raises(ValueError):
        fit_power_law([1], [1])
    with pytest.raises(ValueError):
        fit_power_law([1, 2], [1])


def test_communication_summary():
    metrics = SimulationMetrics()
    metrics.record_send(Message(1, 2, "a/b", 7, 0.0), sender_corrupt=False)
    metrics.record_send(Message(3, 2, "a/b", 7, 0.0), sender_corrupt=True)
    metrics.record_delivery()
    summary = communication_summary(metrics)
    assert summary["messages_sent"] == 2
    assert summary["messages_delivered"] == 1
    assert summary["total_bits"] > summary["honest_bits"] > 0
    assert metrics.bits_by_tag_prefix["a"] == metrics.total_bits


def test_per_round_message_accounting():
    from repro.analysis import max_message_bits, max_round_bits, per_round_bits

    metrics = SimulationMetrics()
    small = Message(1, 2, "preproc/x", 7, 0.0)
    big = Message(1, 2, "preproc/y", [7] * 10, 1.0)
    other = Message(1, 2, "other", "zz", 1.5)
    metrics.record_send(small, sender_corrupt=False, round_index=0)
    metrics.record_send(big, sender_corrupt=False, round_index=1)
    metrics.record_send(other, sender_corrupt=False, round_index=1)

    rounds = per_round_bits(metrics)
    assert rounds == {0: small.bits, 1: big.bits + other.bits}
    assert max_round_bits(metrics) == big.bits + other.bits
    assert max_message_bits(metrics) == big.bits
    assert max_message_bits(metrics, "preproc") == big.bits
    assert max_message_bits(metrics, "other") == other.bits
    assert max_message_bits(metrics, "absent") == 0
    assert metrics.max_message_bits_by_round == {0: small.bits, 1: big.bits}

    summary = communication_summary(metrics)
    assert summary["max_message_bits"] == big.bits
    assert summary["max_round_bits"] == big.bits + other.bits


def test_sharded_triple_message_bound_formula():
    from repro.analysis import sharded_triple_message_bound

    # One triple, ts=1: 9 degree-1 polynomials of 2 coefficients each.
    bound = sharded_triple_message_bound(1, 1, 61)
    assert bound == 9 * 2 * 61 + 64 + 128
    # The bound is linear in the shard size (plus the constant slack).
    assert (
        sharded_triple_message_bound(4, 1, 61) - sharded_triple_message_bound(2, 1, 61)
        == 2 * 9 * 2 * 61
    )
