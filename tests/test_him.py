"""Unit tests for the HIM offline-phase primitives (repro.triples.him).

The protocol-level behaviour (batch/scalar twins, adversarial discard and
loud abort, sharded message bounds) lives in the scenario matrix
(test_scenario_matrix.py) and the kernel-equivalence suite; this module
pins the algebra underneath: hyper-invertibility of the cached matrix,
linearity of the share-wise extraction, the yield arithmetic, and the
run_mpc wiring of the ``offline`` knob.
"""

from __future__ import annotations

import itertools

import pytest

from repro.field import default_field
from repro.field.array import HIM_POINT_OFFSET, him_matrix
from repro.field.polynomial import Polynomial, interpolate_at
from repro.triples import (
    OFFLINE_MODES,
    HimPreprocessing,
    Preprocessing,
    extract_random_shares,
    him_extraction_yield,
    him_preprocessing_time_bound,
    him_slots,
)
from repro.triples.preprocessing import check_offline_mode

FIELD = default_field()


def _det_mod(field, rows):
    """Determinant over GF(p) by fraction-free elimination on residues."""
    p = field.modulus
    m = [list(map(int, row)) for row in rows]
    size = len(m)
    det = 1
    for col in range(size):
        pivot = next((r for r in range(col, size) if m[r][col] % p), None)
        if pivot is None:
            return 0
        if pivot != col:
            m[col], m[pivot] = m[pivot], m[col]
            det = -det % p
        det = det * m[col][col] % p
        inv = pow(m[col][col], p - 2, p)
        for r in range(col + 1, size):
            factor = m[r][col] * inv % p
            m[r] = [(a - factor * b) % p for a, b in zip(m[r], m[col])]
    return det % p


def test_him_matrix_is_hyper_invertible():
    """Every square submatrix is invertible -- the defining HIM property,
    checked exhaustively at a small size."""
    inputs, outputs = 5, 4
    matrix = him_matrix(FIELD, inputs, outputs)
    assert len(matrix) == outputs and all(len(row) == inputs for row in matrix)
    for size in range(1, outputs + 1):
        for row_pick in itertools.combinations(range(outputs), size):
            for col_pick in itertools.combinations(range(inputs), size):
                sub = [[matrix[r][c] for c in col_pick] for r in row_pick]
                assert _det_mod(FIELD, sub) != 0, (row_pick, col_pick)


def test_him_matrix_is_cached_and_validated():
    first = him_matrix(FIELD, 6, 3)
    assert him_matrix(FIELD, 6, 3) is first
    with pytest.raises(ValueError):
        him_matrix(FIELD, 3, 4)  # more outputs than inputs
    with pytest.raises(ValueError):
        him_matrix(FIELD, 3, 0)


def test_him_output_points_are_disjoint_from_party_points():
    """The point-change targets must never collide with party evaluation
    points, or an extracted value would equal some dealer's input verbatim."""
    for i in range(1, 65):
        assert int(FIELD.alpha(i)) < HIM_POINT_OFFSET + 1


def test_extract_random_shares_is_a_sharing_of_the_him_image():
    """Share-wise extraction commutes with reconstruction: interpolating the
    extracted share vectors yields exactly HIM @ secrets."""
    n, ts, count = 5, 1, 3
    rng = __import__("random").Random(7)
    inputs = 4  # |CS| = n - ts dealers
    outputs = inputs - ts
    secrets = [[FIELD.random(rng) for _ in range(count)] for _ in range(inputs)]
    polys = [
        [Polynomial.random(FIELD, ts, constant_term=s, rng=rng) for s in row]
        for row in secrets
    ]
    per_party_rows = {
        pid: [[poly.evaluate(FIELD.alpha(pid)) for poly in row] for row in polys]
        for pid in range(1, n + 1)
    }
    extracted = {
        pid: extract_random_shares(FIELD, per_party_rows[pid], outputs)
        for pid in range(1, n + 1)
    }
    matrix = him_matrix(FIELD, inputs, outputs)
    for j in range(outputs):
        for k in range(count):
            points = [
                (FIELD.alpha(pid), extracted[pid][j][k]) for pid in range(1, ts + 2)
            ]
            value = interpolate_at(FIELD, points, 0)
            expected = sum(
                (FIELD(m) * secrets[i][k] for i, m in enumerate(matrix[j])),
                FIELD.zero(),
            )
            assert value == expected


def test_him_yield_and_slot_arithmetic():
    # n=4, ts=1: m=3, d=1 -> one fresh triple per slot.
    assert him_extraction_yield(4, 1) == 1
    assert him_slots(4, 1, 3) == 3
    # n=7, ts=2: m=5, d=2 -> one per slot; n=10, ts=2: m=8, d=3 -> two.
    assert him_extraction_yield(7, 2) == 1
    assert him_extraction_yield(10, 2) == 2
    assert him_slots(10, 2, 5) == 3
    assert him_slots(10, 2, 1) == 1


def test_him_time_bound_grows_with_sharding():
    base = him_preprocessing_time_bound(4, 1, 1.0, shard_size=None, c_m=3)
    sharded = him_preprocessing_time_bound(4, 1, 1.0, shard_size=1, c_m=3)
    assert sharded > base > 0


def test_offline_mode_dispatch_and_validation():
    assert set(OFFLINE_MODES) == {"tripsh", "him"}
    assert check_offline_mode("him") == "him"
    with pytest.raises(ValueError):
        check_offline_mode("bgw")
    with pytest.raises(ValueError):
        him_preprocessing_time_bound(4, 1, 1.0, shard_size=0)


def test_preprocessing_mode_him_constructs_him_subclass():
    """``Preprocessing(mode="him")`` must hand back a fully-initialised
    HimPreprocessing -- the mode knob is the only API change callers see."""
    from repro.sim import ProtocolRunner

    runner = ProtocolRunner(4, seed=3)
    result = runner.run(
        lambda party: Preprocessing(
            party, "preproc", ts=1, ta=0, num_triples=2, anchor=0.0, mode="him"
        ),
        max_time=5_000_000.0,
    )
    instance = next(iter(result.instances.values()))
    assert isinstance(instance, HimPreprocessing)
    assert instance.mode == "him"
    assert len(result.honest_outputs()) == 4
    for out in result.honest_outputs().values():
        assert len(out) >= 2


def test_run_mpc_him_outputs_match_reference():
    """The offline knob is output-invariant end to end through run_mpc."""
    from repro.circuits import millionaires_product_circuit
    from repro.mpc import run_mpc

    circuit = millionaires_product_circuit(FIELD, 4)
    inputs = {1: 3, 2: 5, 3: 7, 4: 11}
    expected = circuit.evaluate({pid: FIELD(v) for pid, v in inputs.items()})
    reference = run_mpc(circuit, inputs, n=4, ts=1, ta=0, seed=9)
    him = run_mpc(circuit, inputs, n=4, ts=1, ta=0, seed=9, offline="him")
    assert reference.completed and him.completed
    assert reference.outputs == him.outputs == expected
