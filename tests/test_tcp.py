"""TcpTransport, the wire codec, and the multi-process launcher.

Layers under test:

* the length-prefixed typed codec (:mod:`repro.runtime.wire`) roundtrips
  every payload shape the protocols use, preserving ``payload_bits`` so
  communication accounting agrees across process boundaries;
* single-process TCP (all parties in one :class:`AsyncioBackend`, every
  non-self message over a real localhost socket) produces the same outputs
  and send metrics as the sim backend -- the wire-parity mode;
* the order-independent :class:`FaultSchedule` faults the *same* messages
  under :class:`InProcessTransport` and :class:`TcpTransport` (seeded
  fault-replay equivalence);
* the multi-process harness (:class:`TcpBackend` + ``python -m
  repro.launch``) runs one OS process per party and reassembles outputs and
  metrics at the launcher.

Everything socket-touching is ``tcp``-marked: tests/conftest.py arms a
SIGALRM per-test timeout so a wedged socket can never hang tier-1.
"""

from __future__ import annotations

import asyncio
import pickle
import time

import pytest

from repro.broadcast.acast import PackedFieldVector
from repro.field import GF, default_field
from repro.field.polynomial import Polynomial
from repro.mpc import run_mpc
from repro.circuits import multiplication_circuit
from repro.runtime import (
    AsyncioBackend,
    FaultSchedule,
    InProcessTransport,
    make_backend,
)
from repro.runtime.launcher import TcpBackend, free_roster
from repro.runtime.programs import AcastFactory, MultiAcastFactory
from repro.runtime.tcp_transport import LatencyShim, TcpTransport
from repro.runtime.wire import (
    decode_message,
    decode_payload,
    encode_message,
    encode_payload,
    frame,
    read_frame,
)
from repro.sharing.wps import PackedPolynomialRows
from repro.sim.messages import Message, payload_bits

FIELD = default_field()


# -- wire codec --------------------------------------------------------------

CODEC_PAYLOADS = [
    None,
    True,
    False,
    0,
    -17,
    2 ** 200 + 3,
    -(2 ** 80),
    3.25,
    "ready",
    "π/κ",
    b"\x00\xffbytes",
    (1, "a", None),
    [1, [2, [3]]],
    {1, 2, 3},
    frozenset({"x"}),
    {"tag": "echo", 4: (True, 2.0)},
    FIELD(1234567),
    GF(257)(99),
    Polynomial(FIELD, [1, 2, 3]),
    PackedFieldVector(FIELD, [0, 1, FIELD.modulus - 1]),
    PackedPolynomialRows.pack(
        FIELD, [Polynomial(FIELD, [5, 6]), Polynomial(FIELD, [7])]
    ),
    ("mixed", [FIELD(9), {"k": PackedFieldVector(FIELD, [4, 5])}]),
]


@pytest.mark.parametrize("payload", CODEC_PAYLOADS, ids=lambda p: type(p).__name__)
def test_codec_roundtrip(payload):
    decoded = decode_payload(encode_payload(payload))
    if isinstance(payload, PackedPolynomialRows):
        assert decoded.vector == payload.vector
        assert decoded.lengths == payload.lengths
    else:
        assert decoded == payload
    assert type(decoded) is type(payload)
    assert payload_bits(decoded) == payload_bits(payload)


def test_codec_roundtrip_large_modulus():
    """Residues over a >64-bit modulus take the per-int path, not the u64 array."""
    big = GF(2 ** 89 - 1, check_prime=False)
    vector = PackedFieldVector(big, [2 ** 70, 1, big.modulus - 1])
    decoded = decode_payload(encode_payload(vector))
    assert decoded == vector
    assert decoded.field.modulus == big.modulus


def test_codec_pickle_fallback_for_unknown_types():
    # Anything without a tag of its own (e.g. a payload forged by a
    # Byzantine behavior hook) rides the pickle fallback.
    import fractions

    forged = fractions.Fraction(22, 7)
    assert decode_payload(encode_payload(forged)) == forged


def test_codec_rejects_trailing_garbage():
    with pytest.raises(ValueError, match="trailing"):
        decode_payload(encode_payload(42) + b"\x00")


def test_message_roundtrip_preserves_accounting():
    message = Message(3, 7, "vss/wps[2]/echo", PackedFieldVector(FIELD, [1, 2, 3]), 12.5)
    decoded = decode_message(encode_message(message))
    assert (decoded.sender, decoded.recipient, decoded.tag) == (3, 7, "vss/wps[2]/echo")
    assert decoded.send_time == 12.5
    assert decoded.payload == message.payload
    assert decoded.bits == message.bits


def test_frame_roundtrip_over_stream():
    bodies = [encode_payload(p) for p in [1, "two", [3.0, None]]]

    async def roundtrip():
        reader = asyncio.StreamReader()
        for body in bodies:
            reader.feed_data(frame(body))
        reader.feed_eof()
        out = [await read_frame(reader) for _ in bodies]
        with pytest.raises(asyncio.IncompleteReadError):
            await read_frame(reader)
        return out

    assert asyncio.run(roundtrip()) == bodies


def test_decoded_field_is_interned():
    element = decode_payload(encode_payload(FIELD(5)))
    assert element.field is FIELD


# -- latency shim ------------------------------------------------------------

def test_latency_shim_deterministic_with_pair_overrides():
    shim = LatencyShim(base=0.01, jitter=0.005, seed=3, pairs={(1, 2): 0.05})
    assert shim.delay(1, 2, 0) >= 0.05
    assert shim.delay(2, 1, 0) >= 0.01
    assert shim.delay(3, 4, 7) == shim.delay(3, 4, 7)
    assert shim.delay(3, 4, 7) != shim.delay(3, 4, 8)
    with pytest.raises(ValueError):
        LatencyShim(base=-0.1)


# -- single-process TCP: wire parity with the in-process backends ------------

def run_acast_on(backend, n=4, seed=3, length=5, **options):
    built = make_backend(backend, n, seed=seed, **options)
    factory = AcastFactory(sender=1, faults=(n - 1) // 3,
                           message=list(range(length)))
    return built.run(factory, max_time=100_000.0)


def test_tcp_requires_real_clock():
    with pytest.raises(ValueError, match="virtual clock"):
        AsyncioBackend(4, transport=TcpTransport())


@pytest.mark.tcp
def test_single_process_tcp_acast_matches_sim():
    sim = run_acast_on("sim")
    tcp = run_acast_on("asyncio", clock="real", time_scale=0.001,
                       transport=TcpTransport())
    assert tcp.honest_outputs() == sim.honest_outputs()
    assert tcp.metrics.messages_sent == sim.metrics.messages_sent
    assert tcp.metrics.total_bits == sim.metrics.total_bits
    assert tcp.metrics.max_message_bits == sim.metrics.max_message_bits


@pytest.mark.tcp
def test_single_process_tcp_acast_matches_sim_n16():
    sim = run_acast_on("sim", n=16, length=8)
    tcp = run_acast_on("asyncio", n=16, length=8, clock="real",
                       time_scale=0.001, transport=TcpTransport())
    assert tcp.honest_outputs() == sim.honest_outputs()
    assert len(tcp.honest_outputs()) == 16
    assert tcp.metrics.messages_sent == sim.metrics.messages_sent
    assert tcp.metrics.total_bits == sim.metrics.total_bits


@pytest.mark.tcp
def test_single_process_tcp_with_latency_still_agrees():
    base = 0.02
    started = time.monotonic()
    tcp = run_acast_on(
        "asyncio", clock="real", time_scale=0.001,
        transport=TcpTransport(latency=LatencyShim(base=base, jitter=0.01, seed=1)),
    )
    elapsed = time.monotonic() - started
    assert tcp.honest_outputs() == run_acast_on("sim").honest_outputs()
    # propose -> echo -> ready is at least two dependent socket hops, each
    # delayed by the shim, so the wall time shows the injected WAN latency.
    assert elapsed >= 2 * base


# -- seeded fault-replay equivalence across transports -----------------------

@pytest.mark.tcp
def test_fault_schedule_replays_identically_over_tcp():
    probabilities = dict(duplicate_probability=0.15, reorder_probability=0.15)
    in_process = FaultSchedule(11, **probabilities)
    over_tcp = FaultSchedule(11, **probabilities)
    run_a = run_acast_on(
        "asyncio", transport=InProcessTransport(faults=in_process))
    run_b = run_acast_on(
        "asyncio", clock="real", time_scale=0.001,
        transport=TcpTransport(faults=over_tcp))
    assert run_a.honest_outputs() == run_b.honest_outputs()
    # Same per-channel handoff numbering on both transports => the hash
    # schedule faulted exactly the same messages, regardless of how the
    # global delivery order interleaved.
    assert sorted(in_process.log) == sorted(over_tcp.log)
    assert any(decision != "deliver" for decision, *_ in in_process.log)


# -- multi-process launcher --------------------------------------------------

@pytest.mark.tcp
def test_multiprocess_acast_smoke():
    sim = run_acast_on("sim")
    tcp = run_acast_on("tcp")
    assert tcp.honest_outputs() == sim.honest_outputs()
    assert tcp.metrics.messages_sent == sim.metrics.messages_sent
    assert tcp.metrics.total_bits == sim.metrics.total_bits


@pytest.mark.tcp
def test_multiprocess_acast_with_crashed_party():
    """Crash-stop one party's process endpoint; the broadcast still lands.

    n=4 tolerates one crash (2f+1 = 3 live parties reach the echo and ready
    thresholds); the crashed party is excluded from the launcher's stop
    barrier, so the run terminates without it.
    """
    n = 4
    backend = TcpBackend(n, seed=5, roster=free_roster(n))
    backend.crash_party(4)
    result = backend.run(
        AcastFactory(sender=1, faults=1, message=[9, 8, 7]), max_time=100_000.0
    )
    outputs = result.honest_outputs()
    assert sorted(outputs) == [1, 2, 3]
    assert {tuple(out.values) for out in outputs.values()} == {(9, 8, 7)}


@pytest.mark.tcp(timeout=240)
def test_run_mpc_over_tcp_backend():
    field = default_field()
    circuit = multiplication_circuit(field, n_parties=4)
    inputs = {1: 3, 2: 5, 3: 7, 4: 11}
    sim = run_mpc(circuit, inputs, n=4, ts=1, ta=0, seed=2)
    # The default time_scale (0.02 s/unit) leaves the synchronous-round
    # deadlines comfortable headroom over localhost socket latency; a much
    # smaller scale can push an input sharing past its round deadline, which
    # excludes that party's input from the common subset (a correct but
    # different execution).
    tcp = run_mpc(circuit, inputs, n=4, ts=1, ta=0, seed=2, backend="tcp")
    assert tcp.completed and tcp.agreed
    assert tcp.outputs == sim.outputs == [field(3 * 5 * 7 * 11)]
    assert tcp.common_subset == [1, 2, 3, 4]


def test_job_spec_pickles():
    from repro.runtime.launcher import JobSpec

    spec = JobSpec(
        n=4, seed=0, field_modulus=FIELD.modulus, network=None,
        factory=AcastFactory(sender=1, faults=1, message=[1, 2]),
        roster={1: ("127.0.0.1", 7001)}, control=("127.0.0.1", 7000),
        latency=LatencyShim(base=0.01), faults=FaultSchedule(3),
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert clone.factory.message == [1, 2]
    assert clone.latency.base == 0.01
    assert clone.faults.seed == 3


def test_tcp_backend_rejects_unsupported_run_options():
    backend = TcpBackend(4)
    with pytest.raises(ValueError, match="max_events"):
        backend.run(AcastFactory(1, 1, [1]), max_events=10)
    with pytest.raises(ValueError, match="extra_predicate"):
        backend.run(AcastFactory(1, 1, [1]), extra_predicate=lambda: True)


# -- tier-2: the full grid over real sockets ---------------------------------

@pytest.mark.tier2
@pytest.mark.tcp(timeout=600)
@pytest.mark.parametrize("scenario_index", [0, 2, 3])
def test_tier2_preprocessing_grid_over_tcp(scenario_index):
    """The runtime acceptance diagonal, re-run with every message crossing a
    real localhost socket (single process, per-party listeners).

    DIAGONAL[1] (crash + sync) is excluded, with the root cause pinned (see
    test_runtime.py::test_missed_regular_mode_deadlines_stall_crash_sync_only
    for the environment-independent regression test): the cell completes iff
    the real-time schedulability bound holds -- peak per-Δ handler CPU must
    stay below ``time_scale * Δ`` real seconds.  When it does not (true
    during the startup burst on this container even at time_scale=0.2
    s/unit, an order of magnitude above this test's 0.001), the clock runs
    ahead of computation, every regular-mode deadline is missed, ΠBC regular
    mode yields ⊥ everywhere, and the BA falls back to the star2 path that
    at t_a=0 needs a full n-clique -- which the crashed party breaks,
    stalling the run.  Honest cells pass because the clique is intact; async
    cells pass because they take no synchronous deadlines; the virtual-clock
    grid in test_runtime.py covers the cell itself because virtual time
    cannot run ahead of computation.  Not a transport property."""
    from test_runtime import DIAGONAL, run_preprocessing_on
    from test_scenario_matrix import triples_are_valid

    scenario = DIAGONAL[scenario_index]
    tcp = run_preprocessing_on(
        scenario, "asyncio", clock="real", time_scale=0.001,
        transport=TcpTransport(),
    )
    # Real-clock scheduling is nondeterministic (so no bit-for-bit sim
    # comparison, exactly like the in-process real-clock tests): the
    # acceptance is agreement and validity of the produced triples.
    assert tcp.all_honest_done()
    assert triples_are_valid(tcp, scenario.ts)


@pytest.mark.tier2
@pytest.mark.tcp(timeout=600)
def test_tier2_multiprocess_multiacast_n7_with_latency():
    n = 7
    factory = MultiAcastFactory(faults=2, length=4)
    sim = make_backend("sim", n, seed=9).run(factory, max_time=100_000.0)
    tcp = TcpBackend(n, seed=9, latency=LatencyShim(base=0.005, jitter=0.002,
                                                    seed=9))
    run = tcp.run(factory, max_time=100_000.0)
    assert run.honest_outputs() == sim.honest_outputs()
    assert len(run.honest_outputs()) == n
