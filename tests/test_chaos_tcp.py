"""Self-healing TCP channels and the process-level crash-restart supervisor.

The scenarios here are the robustness acceptance surface:

* a receiver that goes away mid-stream costs **no frames**: the sender's
  channel writer backs off, redials, and replays everything unacknowledged
  once the endpoint returns (``transport.reconnects`` counts the healing
  activity);
* a **restarted sender** is a new incarnation: its wire seqs start from 1
  again, and the incarnation preamble makes the surviving receiver reset
  its dedupe high-water instead of silently swallowing every frame the
  reborn process sends (the bug that originally made crash-restart
  impossible);
* the full acceptance criterion: a party SIGKILLed **mid-evaluation** on
  the multi-process TCP backend is respawned from its latest on-disk
  snapshot, rejoins via the RejoinProtocol handshake over TCP, the
  interrupted attempt is abandoned and re-issued, and the final outputs
  are bit-identical to an uninterrupted run.

Everything opens real sockets (``tcp`` marker) and injects failures
(``chaos`` marker), so the tests/conftest.py SIGALRM cap bounds each test.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.circuits import multiplication_circuit
from repro.field import default_field
from repro.runtime.launcher import free_roster
from repro.runtime.supervisor import TcpMpcService
from repro.runtime.tcp_transport import TcpTransport
from repro.sim.messages import Message


def _msg(sender, recipient, payload):
    return Message(sender, recipient, "chaos", payload, 0.0)


async def _take(queue, count, timeout=30.0):
    out = []
    for _ in range(count):
        message, _handled = await asyncio.wait_for(queue.get(), timeout)
        out.append(message)
    return out


async def _until(predicate, timeout=30.0, what="condition"):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        await asyncio.sleep(0.01)


# -- channel self-healing: reconnect with backoff, no frame loss -------------

@pytest.mark.tcp
@pytest.mark.chaos
def test_reconnect_with_backoff_loses_no_frames():
    """Kill the receiving endpoint mid-stream, keep sending into the
    outage, bring a fresh endpoint up on the same port: the channel heals
    and delivers the buffered frames exactly once, in order."""
    roster = free_roster(2)

    async def scenario():
        receiver = TcpTransport(roster=dict(roster), local_parties=[2])
        await receiver.open([1, 2])
        sender = TcpTransport(
            roster=dict(roster), local_parties=[1],
            heartbeat_interval=0.05, max_reconnect_attempts=400,
            reconnect_base=0.02, reconnect_cap=0.1, ack_every=1,
        )
        await sender.open([1, 2])
        for index in range(10):
            sender.deliver(_msg(1, 2, index))
        before = await _take(receiver.inbox(2), 10)
        assert [m.payload for m in before] == list(range(10))
        # Wait until every frame is acked (ack_every=1), so the replay
        # after the heal carries exactly the outage-era frames.
        state = sender._channel_states[(1, 2)]
        await _until(lambda: not state.pending, what="acks to prune buffer")

        receiver.close()
        # The next heartbeat write discovers the dead endpoint and starts
        # the backoff/redial loop.
        await asyncio.sleep(0.15)
        for index in range(10, 15):
            sender.deliver(_msg(1, 2, index))

        healed = TcpTransport(roster=dict(roster), local_parties=[2])
        await healed.open([1, 2])
        after = await _take(healed.inbox(2), 5)
        assert [m.payload for m in after] == list(range(10, 15))
        assert healed.inbox(2).empty()  # exactly once, no stray replays
        assert sender.reconnects >= 1, "the outage must register as healing"
        assert not sender.broken_channels
        assert sender._error is None
        sender.close()
        healed.close()

    asyncio.run(scenario())


@pytest.mark.tcp
@pytest.mark.chaos
def test_restarted_sender_incarnation_resets_dedupe():
    """A supervisor-restarted party numbers its wire seqs from 1 again; the
    incarnation preamble tells the surviving receiver to drop the dead
    incarnation's dedupe high-water.  Without it every frame from the
    reborn process is silently swallowed (this test then hangs into its
    SIGALRM cap)."""
    roster = free_roster(2)

    async def scenario():
        receiver = TcpTransport(roster=dict(roster), local_parties=[2])
        await receiver.open([1, 2])
        first = TcpTransport(roster=dict(roster), local_parties=[1], ack_every=1)
        await first.open([1, 2])
        for index in range(5):
            first.deliver(_msg(1, 2, ("first", index)))
        got = await _take(receiver.inbox(2), 5)
        assert [m.payload for m in got] == [("first", i) for i in range(5)]
        first.close()

        reborn = TcpTransport(roster=dict(roster), local_parties=[1], ack_every=1)
        assert reborn.incarnation != first.incarnation
        await reborn.open([1, 2])
        for index in range(5):
            reborn.deliver(_msg(1, 2, ("reborn", index)))
        late = await _take(receiver.inbox(2), 5)
        assert [m.payload for m in late] == [("reborn", i) for i in range(5)]
        reborn.close()
        receiver.close()

    asyncio.run(scenario())


# -- the acceptance criterion: kill mid-evaluation, heal, identical outputs --

@pytest.mark.tcp
@pytest.mark.chaos(timeout=300)
def test_supervisor_crash_restart_rejoin_mid_evaluation_n4(tmp_path):
    """SIGKILL party 3 mid-evaluation on the multi-process TCP backend: the
    supervisor respawns it with ``--resume`` from its latest snapshot,
    drives the RejoinProtocol handshake over TCP, abandons the interrupted
    attempt, re-issues it, and the evaluation returns outputs bit-identical
    to the fault-free reference."""
    field = default_field()
    circuit = multiplication_circuit(field, n_parties=4)
    inputs = {pid: pid + 2 for pid in range(1, 5)}
    reference = [
        int(v) for v in circuit.evaluate({p: field(v) for p, v in inputs.items()})
    ]

    svc = TcpMpcService(4, 1, 0, seed=11, snapshot_dir=str(tmp_path))
    try:
        svc.start()
        warm = svc.evaluate(circuit, inputs)
        assert warm.output_values == reference

        # Fire the kill a fixed real-time offset into the next evaluation
        # (warm evals take several seconds on this backend, so 0.8 s lands
        # squarely mid-stream).
        timer = threading.Timer(0.8, svc.kill_party, args=(3,))
        timer.start()
        try:
            interrupted = svc.evaluate(circuit, inputs)
        finally:
            timer.cancel()
        assert interrupted.output_values == reference

        assert svc.recoveries, "the kill must have produced a recovery report"
        report = svc.recoveries[0]
        assert report.party_id == 3
        assert report.snapshot_version >= 1  # restarted *from a snapshot*
        # The warm result was already inside snapshot v1 when the process
        # died, so nothing needed replay; the field just must be coherent.
        assert report.replayed_results == 0
        assert report.attempts >= 1          # the rejoin handshake ran
        assert report.wall_recovery_time > 0

        # The healed roster keeps serving the stream.
        svc.wait_recovered()
        post = svc.evaluate(circuit, inputs)
        assert post.output_values == reference
        assert [r.output_values for r in svc.results] == [reference] * 3
    finally:
        svc.close()
