"""Tests for ΠWPS, the best-of-both-worlds weak polynomial sharing (Theorem 4.8)."""

import pytest

from repro.sharing.wps import WeakPolynomialSharing, wps_time_bound
from repro.sim import (
    AdversarialAsynchronousNetwork,
    AsynchronousNetwork,
    CrashBehavior,
    EquivocatingBehavior,
    SilentBehavior,
    SynchronousNetwork,
    WrongValueBehavior,
)

from protocol_helpers import (
    FIELD,
    honest_outputs_consistent,
    random_polynomial,
    run_dealer_protocol,
    shares_match_polynomials,
)


def _run_wps(**kwargs):
    return run_dealer_protocol(WeakPolynomialSharing, **kwargs)


# -- honest dealer -------------------------------------------------------------------------


def test_sync_correctness_honest_dealer():
    poly = random_polynomial(1, 42, seed=1)
    result = _run_wps(n=4, ts=1, ta=0, dealer=1, polynomials=[poly])
    assert len(result.honest_outputs()) == 4
    assert shares_match_polynomials(result, [poly])


def test_sync_correctness_output_time():
    poly = random_polynomial(1, 7, seed=2)
    result = _run_wps(n=4, ts=1, ta=0, dealer=1, polynomials=[poly])
    bound = wps_time_bound(4, 1, 1.0)
    assert all(t <= bound + 1e-6 for t in result.honest_output_times().values())


def test_sync_correctness_multiple_polynomials():
    polys = [random_polynomial(1, 10 + i, seed=3 + i) for i in range(3)]
    result = _run_wps(n=4, ts=1, ta=0, dealer=2, polynomials=polys)
    assert shares_match_polynomials(result, polys)


def test_sync_correctness_with_crashed_party():
    poly = random_polynomial(1, 9, seed=5)
    result = _run_wps(n=4, ts=1, ta=0, dealer=1, polynomials=[poly],
                      corrupt={3: CrashBehavior()})
    assert len(result.honest_outputs()) == 3
    assert shares_match_polynomials(result, [poly])


def test_sync_correctness_with_lying_party():
    poly = random_polynomial(1, 11, seed=6)
    result = _run_wps(n=5, ts=1, ta=1, dealer=1, polynomials=[poly],
                      corrupt={4: WrongValueBehavior(offset=3)})
    assert len(result.honest_outputs()) == 4
    assert shares_match_polynomials(result, [poly])


def test_async_correctness_honest_dealer():
    poly = random_polynomial(1, 33, seed=7)
    result = _run_wps(n=5, ts=1, ta=1, dealer=1, polynomials=[poly],
                      network=AsynchronousNetwork(max_delay=6.0), seed=8)
    assert len(result.honest_outputs()) == 5
    assert shares_match_polynomials(result, [poly])


def test_async_correctness_with_slow_honest_party():
    poly = random_polynomial(1, 21, seed=9)
    network = AdversarialAsynchronousNetwork(slow_parties=frozenset({5}), slow_delay=40.0,
                                             fast_delay=0.3)
    result = _run_wps(n=5, ts=1, ta=1, dealer=1, polynomials=[poly], network=network, seed=10)
    assert len(result.honest_outputs()) == 5
    assert shares_match_polynomials(result, [poly])


def test_privacy_adversary_view_underdetermines_secret():
    """The (static) corrupt party's received rows never determine q(0)."""
    poly = random_polynomial(1, 12345, seed=11)
    result = _run_wps(n=4, ts=1, ta=0, dealer=1, polynomials=[poly], seed=12)
    # Party 4 plays the adversary's role: its view is its row q_4(x), i.e. a
    # single univariate polynomial; by Lemma 2.2 every candidate secret is
    # consistent with it.
    instance = result.instances[4]
    row = instance.my_rows[0]
    from repro.field.polynomial import lagrange_interpolate

    for candidate in (0, 1, 999):
        # A degree-1 polynomial through (alpha_4, row(0)) and (0, candidate).
        q2 = lagrange_interpolate(
            FIELD, [(FIELD.alpha(4), row.evaluate(0)), (FIELD(0), FIELD(candidate))]
        )
        assert q2.evaluate(FIELD.alpha(4)) == row.evaluate(0)


# -- corrupt dealer -------------------------------------------------------------------------


def test_corrupt_silent_dealer_no_output():
    poly = random_polynomial(1, 5, seed=13)
    result = _run_wps(n=4, ts=1, ta=0, dealer=2, polynomials=[poly],
                      corrupt={2: SilentBehavior(lambda tag: True)}, max_time=5_000.0)
    assert len(result.honest_outputs()) == 0


def test_corrupt_dealer_weak_commitment_sync():
    """A dealer distributing perturbed rows to one party: any produced
    honest outputs must still lie on a single degree-ts polynomial."""
    poly = random_polynomial(1, 50, seed=14)
    corrupt = {2: EquivocatingBehavior(group_b=[4], tag_predicate=lambda tag: "/points" not in tag)}
    result = _run_wps(n=4, ts=1, ta=0, dealer=2, polynomials=[poly], corrupt=corrupt,
                      seed=15, max_time=20_000.0)
    assert honest_outputs_consistent(result, ts=1)


def test_corrupt_dealer_strong_commitment_async():
    poly = random_polynomial(1, 60, seed=16)
    corrupt = {1: WrongValueBehavior(target_recipients=[5], offset=2)}
    result = _run_wps(n=5, ts=1, ta=1, dealer=1, polynomials=[poly],
                      network=AsynchronousNetwork(max_delay=4.0), corrupt=corrupt,
                      seed=17, max_time=60_000.0)
    # If any honest party output, the outputs are consistent shares.
    assert honest_outputs_consistent(result, ts=1)


def test_wps_n7_ts2_honest_dealer():
    polys = [random_polynomial(2, 100, seed=18)]
    result = _run_wps(n=7, ts=2, ta=0, dealer=3, polynomials=polys, seed=19)
    assert len(result.honest_outputs()) == 7
    assert shares_match_polynomials(result, polys)


def test_communication_reported():
    poly = random_polynomial(1, 1, seed=20)
    result = _run_wps(n=4, ts=1, ta=0, dealer=1, polynomials=[poly])
    assert result.metrics.honest_bits > 0
    assert result.metrics.messages_sent > 100
