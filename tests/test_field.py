"""Unit and property-based tests for GF(p) arithmetic."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.field.gf import GF, FieldElement, DEFAULT_PRIME, default_field


def test_default_prime_is_mersenne_61():
    assert DEFAULT_PRIME == 2 ** 61 - 1


def test_default_field_is_cached():
    assert default_field() is default_field()


def test_non_prime_modulus_rejected():
    with pytest.raises(ValueError):
        GF(100)


def test_prime_check_can_be_skipped():
    assert GF(100, check_prime=False).modulus == 100


def test_basic_arithmetic(field):
    a = field(10)
    b = field(3)
    assert int(a + b) == 13
    assert int(a - b) == 7
    assert int(a * b) == 30
    assert int(a / b * b) == 10
    assert int(-a) == field.modulus - 10


def test_integer_coercion(field):
    a = field(5)
    assert a + 2 == field(7)
    assert 2 + a == field(7)
    assert 2 * a == field(10)
    assert a - 7 == field(-2)
    assert 7 - a == field(2)
    assert int(10 / field(5)) == 2


def test_negative_and_overflow_values_reduced(field):
    assert int(field(-1)) == field.modulus - 1
    assert int(field(field.modulus + 5)) == 5


def test_inverse_and_division(field):
    a = field(123456789)
    assert int(a * a.inverse()) == 1
    with pytest.raises(ZeroDivisionError):
        field.zero().inverse()


def test_pow(field):
    a = field(7)
    assert a ** 0 == field.one()
    assert a ** 3 == field(343)
    assert a ** -1 == a.inverse()


def test_equality_and_hash(field):
    assert field(4) == field(4)
    assert field(4) == 4
    assert field(4) != field(5)
    assert hash(field(4)) == hash(field(4))
    assert len({field(4), field(4), field(5)}) == 2


def test_bool_and_repr(field):
    assert not field(0)
    assert field(1)
    assert "FieldElement" in repr(field(1))


def test_cannot_mix_fields(field, small_field):
    with pytest.raises(ValueError):
        field(1) + small_field(1)


def test_field_equality_and_hash(field, small_field):
    assert field == default_field()
    assert field != small_field
    assert hash(field) == hash(default_field())


def test_alpha_beta_points_distinct(field):
    alphas = [int(field.alpha(i)) for i in range(1, 33)]
    betas = [int(field.beta(j)) for j in range(1, 33)]
    assert len(set(alphas)) == 32
    assert len(set(betas)) == 32
    assert not set(alphas) & set(betas)
    assert 0 not in alphas and 0 not in betas


def test_alpha_beta_reject_non_positive(field):
    with pytest.raises(ValueError):
        field.alpha(0)
    with pytest.raises(ValueError):
        field.beta(0)


def test_random_respects_rng(field):
    a = field.random(random.Random(1))
    b = field.random(random.Random(1))
    assert a == b
    assert len(field.random_list(5, random.Random(2))) == 5


def test_elements_and_bits(field):
    assert field.elements([1, 2, 3]) == [field(1), field(2), field(3)]
    assert field.element_bits() == 61


def test_call_rejects_foreign_element(field, small_field):
    with pytest.raises(ValueError):
        field(small_field(3))


@settings(max_examples=60, deadline=None)
@given(a=st.integers(0, DEFAULT_PRIME - 1), b=st.integers(0, DEFAULT_PRIME - 1),
       c=st.integers(0, DEFAULT_PRIME - 1))
def test_ring_axioms(a, b, c):
    field = default_field()
    fa, fb, fc = field(a), field(b), field(c)
    assert fa + fb == fb + fa
    assert fa * fb == fb * fa
    assert (fa + fb) + fc == fa + (fb + fc)
    assert (fa * fb) * fc == fa * (fb * fc)
    assert fa * (fb + fc) == fa * fb + fa * fc


@settings(max_examples=60, deadline=None)
@given(a=st.integers(1, DEFAULT_PRIME - 1))
def test_inverse_property(a):
    field = default_field()
    assert field(a) * field(a).inverse() == field.one()
