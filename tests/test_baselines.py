"""Tests for the baseline protocols (pure synchronous and pure asynchronous MPC)."""

import pytest

from repro.baselines import run_asynchronous_baseline, run_synchronous_baseline
from repro.baselines.dealer import TrustedTripleDealer
from repro.circuits import mean_circuit, multiplication_circuit
from repro.field import default_field
from repro.sim import AsynchronousNetwork, CrashBehavior, SynchronousNetwork
from repro.sim.network import PartitionedSynchronousNetwork

F = default_field()


def test_trusted_dealer_produces_multiplication_triples():
    dealer = TrustedTripleDealer(F, n=4, degree=1, seed=1)
    triples = dealer.triples(3)
    assert len(triples) == 3
    for a, b, c in triples:
        assert a.reconstruct() * b.reconstruct() == c.reconstruct()
    views = dealer.triple_shares_for(2)
    assert set(views) == {1, 2, 3, 4}
    assert all(len(v) == 2 for v in views.values())


# -- synchronous baseline ----------------------------------------------------------------------


def test_smpc_correct_in_synchronous_network():
    circuit = multiplication_circuit(F, 4)
    result = run_synchronous_baseline(circuit, {1: 2, 2: 3, 3: 4, 4: 5}, n=4, faults=1)
    expected = circuit.evaluate({i: F(v) for i, v in {1: 2, 2: 3, 3: 4, 4: 5}.items()})
    assert all(out == expected for out in result.honest_outputs().values())


def test_smpc_linear_circuit():
    circuit = mean_circuit(F, 4)
    result = run_synchronous_baseline(circuit, {1: 1, 2: 2, 3: 3, 4: 4}, n=4, faults=1)
    assert all(out == [F(10)] for out in result.honest_outputs().values())


def test_smpc_fixed_running_time():
    circuit = multiplication_circuit(F, 4)
    result = run_synchronous_baseline(circuit, {1: 1, 2: 1, 3: 1, 4: 1}, n=4, faults=1)
    times = set(result.honest_output_times().values())
    assert len(times) == 1  # lock-step rounds: everyone finishes simultaneously
    # input round + D_M multiplication rounds + output round
    assert times.pop() == pytest.approx(1.0 + circuit.multiplicative_depth + 1.0, abs=0.1)


def test_smpc_tolerates_crash_in_sync():
    circuit = mean_circuit(F, 4)
    result = run_synchronous_baseline(circuit, {1: 1, 2: 2, 3: 3, 4: 4}, n=4, faults=1,
                                      corrupt={3: CrashBehavior()})
    # The crashed party's input is treated as 0; honest parties agree.
    outputs = list(result.honest_outputs().values())
    assert all(out == [F(7)] for out in outputs)


def test_smpc_breaks_when_synchrony_violated():
    """E8: delaying a single party's messages beyond Δ makes the synchronous
    baseline compute a wrong (or inconsistent) output."""
    circuit = multiplication_circuit(F, 4)
    inputs = {1: 2, 2: 3, 3: 4, 4: 5}
    network = PartitionedSynchronousNetwork(delta=1.0, delayed_parties=frozenset({2}),
                                            violation_factor=50.0)
    result = run_synchronous_baseline(circuit, inputs, n=4, faults=1, network=network,
                                      max_time=1_000.0)
    expected = circuit.evaluate({i: F(v) for i, v in inputs.items()})
    outputs = list(result.honest_outputs().values())
    assert outputs, "baseline should still produce (wrong) outputs"
    assert any(out != expected for out in outputs)


# -- asynchronous baseline ----------------------------------------------------------------------


def test_ampc_correct_in_asynchronous_network():
    circuit = multiplication_circuit(F, 5)
    inputs = {1: 2, 2: 3, 3: 4, 4: 5, 5: 6}
    result = run_asynchronous_baseline(circuit, inputs, n=5, faults=1,
                                       network=AsynchronousNetwork(max_delay=5.0), seed=2)
    # The async baseline ignores the inputs of parties outside its core set
    # (the last t_a parties): party 5's input counts as 0 here.
    expected = circuit.evaluate({1: F(2), 2: F(3), 3: F(4), 4: F(5)})
    outputs = list(result.honest_outputs().values())
    assert len(outputs) == 5
    assert all(out == expected for out in outputs)


def test_ampc_ignores_up_to_ta_inputs():
    circuit = mean_circuit(F, 4)
    inputs = {1: 10, 2: 20, 3: 30, 4: 40}
    result = run_asynchronous_baseline(circuit, inputs, n=4, faults=0, seed=3)
    # With faults=0 the core set is everyone and nothing is lost.
    assert all(out == [F(100)] for out in result.honest_outputs().values())
    result = run_asynchronous_baseline(circuit, inputs, n=4, faults=1, seed=4,
                                       network=AsynchronousNetwork(max_delay=3.0))
    # With faults=1 the last party's input is dropped.
    assert all(out == [F(60)] for out in result.honest_outputs().values())


def test_ampc_lower_threshold_than_bobw():
    """The asynchronous baseline needs t < n/4: with n = 4 it tolerates 0 faults,
    whereas the best-of-both-worlds protocol tolerates t_s = 1 in a synchronous
    network (compare test_mpc.py)."""
    assert 4 // 4 == 1 and (4 - 1) // 4 == 0  # t_a < n/4 forces t_a = 0 at n = 4
    circuit = mean_circuit(F, 4)
    result = run_asynchronous_baseline(circuit, {1: 1, 2: 2, 3: 3, 4: 4}, n=4, faults=0,
                                       network=AsynchronousNetwork(max_delay=2.0), seed=5)
    assert all(out == [F(10)] for out in result.honest_outputs().values())


def test_ampc_eventual_termination_under_heavy_delays():
    circuit = mean_circuit(F, 5)
    result = run_asynchronous_baseline(circuit, {i: i for i in range(1, 6)}, n=5, faults=1,
                                       network=AsynchronousNetwork(max_delay=40.0), seed=6)
    assert len(result.honest_outputs()) == 5


# -- batched vs scalar field paths --------------------------------------------------------------


def _run_both_modes(run):
    from repro.field.array import set_batch_enabled

    results = {}
    for batch in (True, False):
        previous = set_batch_enabled(batch)
        try:
            results[batch] = run()
        finally:
            set_batch_enabled(previous)
    return results[True], results[False]


def test_smpc_batch_and_scalar_runs_identical():
    circuit = multiplication_circuit(F, 4)
    inputs = {1: 2, 2: 3, 3: 4, 4: 5}
    batch_run, scalar_run = _run_both_modes(
        lambda: run_synchronous_baseline(circuit, inputs, n=4, faults=1, seed=9)
    )
    assert batch_run.honest_outputs() == scalar_run.honest_outputs()
    assert batch_run.honest_output_times() == scalar_run.honest_output_times()


def test_smpc_batch_and_scalar_garbage_identical_under_violation():
    """Even the failure mode (synchrony violated, fallback interpolation of
    garbage) must be bit-identical between the twins."""
    circuit = multiplication_circuit(F, 4)
    inputs = {1: 2, 2: 3, 3: 4, 4: 5}
    batch_run, scalar_run = _run_both_modes(
        lambda: run_synchronous_baseline(
            circuit, inputs, n=4, faults=1, max_time=1_000.0, seed=9,
            network=PartitionedSynchronousNetwork(
                delta=1.0, delayed_parties=frozenset({2}), violation_factor=50.0
            ),
        )
    )
    assert batch_run.honest_outputs() == scalar_run.honest_outputs()


def test_ampc_batch_and_scalar_runs_identical():
    circuit = mean_circuit(F, 4)
    batch_run, scalar_run = _run_both_modes(
        lambda: run_asynchronous_baseline(
            circuit, {1: 10, 2: 20, 3: 30, 4: 40}, n=4, faults=1, seed=4,
            network=AsynchronousNetwork(max_delay=3.0),
        )
    )
    assert batch_run.honest_outputs() == scalar_run.honest_outputs()
    assert batch_run.honest_output_times() == scalar_run.honest_output_times()
