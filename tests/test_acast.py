"""Tests for Bracha's Acast (Lemma 2.4)."""

import pytest

from repro.broadcast.acast import AcastProtocol, acast_time_bound
from repro.sim import (
    AsynchronousNetwork,
    CrashBehavior,
    EquivocatingBehavior,
    ProtocolRunner,
    SilentBehavior,
    SynchronousNetwork,
)


def _run_acast(n, t, sender, message, network, corrupt=None, seed=0, max_time=500.0):
    runner = ProtocolRunner(n, network=network, seed=seed, corrupt=corrupt or {})

    def factory(party):
        return AcastProtocol(
            party,
            "acast",
            sender=sender,
            faults=t,
            message=message if party.id == sender else None,
        )

    return runner.run(factory, max_time=max_time)


def test_sync_honest_sender_validity_and_liveness():
    result = _run_acast(4, 1, sender=1, message="m", network=SynchronousNetwork())
    outputs = result.honest_outputs()
    assert len(outputs) == 4
    assert all(v == "m" for v in outputs.values())
    # Lemma 2.4: all honest parties obtain the output within 3Δ.
    assert all(t <= acast_time_bound(1.0) + 1e-6 for t in result.honest_output_times().values())


def test_async_honest_sender_eventual_delivery():
    result = _run_acast(4, 1, sender=2, message=("payload", 5), network=AsynchronousNetwork(), seed=7)
    outputs = result.honest_outputs()
    assert len(outputs) == 4
    assert all(v == ("payload", 5) for v in outputs.values())


def test_corrupt_silent_sender_no_liveness():
    result = _run_acast(
        4, 1, sender=3, message="m", network=SynchronousNetwork(),
        corrupt={3: SilentBehavior(lambda tag: True)}, max_time=100.0,
    )
    assert len(result.honest_outputs()) == 0


def test_corrupt_equivocating_sender_consistency():
    # Sender sends different init values to {3, 4}; consistency requires that
    # every honest party that outputs, outputs the same value.
    result = _run_acast(
        4, 1, sender=1, message=("v", 1), network=SynchronousNetwork(),
        corrupt={1: EquivocatingBehavior(group_b=[3, 4], tag_predicate=lambda t: True)},
        max_time=100.0,
    )
    outputs = list(result.honest_outputs().values())
    assert len(set(map(str, outputs))) <= 1


def test_crashed_non_sender_does_not_block():
    result = _run_acast(
        4, 1, sender=1, message="m", network=SynchronousNetwork(),
        corrupt={4: CrashBehavior()},
    )
    outputs = result.honest_outputs()
    assert len(outputs) == 3
    assert all(v == "m" for v in outputs.values())


def test_larger_committee_n7_t2():
    result = _run_acast(7, 2, sender=5, message="hello", network=AsynchronousNetwork(), seed=3)
    outputs = result.honest_outputs()
    assert len(outputs) == 7
    assert all(v == "hello" for v in outputs.values())


def test_communication_is_order_n_squared():
    result4 = _run_acast(4, 1, sender=1, message="x" * 8, network=SynchronousNetwork())
    result8 = _run_acast(8, 2, sender=1, message="x" * 8, network=SynchronousNetwork())
    # Message count grows roughly quadratically (ratio ~4 for doubling n).
    ratio = result8.metrics.messages_sent / result4.metrics.messages_sent
    assert 2.5 <= ratio <= 6.0


# -- batched payloads (PackedFieldVector) -------------------------------------------


def test_packed_vector_roundtrip_and_digest():
    from repro.broadcast.acast import PackedFieldVector, maybe_pack_payload
    from repro.field import default_field

    field = default_field()
    elements = tuple(field(v) for v in (3, 0, field.modulus - 1, 42))
    packed = maybe_pack_payload(elements)
    assert isinstance(packed, PackedFieldVector)
    assert packed.elements() == list(elements)
    assert len(packed) == 4
    # Equal vectors are equal objects with equal (cached) hashes...
    twin = PackedFieldVector.pack(field, list(elements))
    assert packed == twin and hash(packed) == hash(twin)
    # ...and dict counting (the Acast echo/ready pattern) groups them.
    votes = {}
    votes.setdefault(packed, set()).add(1)
    votes.setdefault(twin, set()).add(2)
    assert votes[packed] == {1, 2}
    # Non-vectors and heterogeneous containers pass through untouched.
    assert maybe_pack_payload("m") == "m"
    assert maybe_pack_payload((1, field(2))) == (1, field(2))


def test_packed_vector_scalar_mode_passthrough():
    from repro.broadcast.acast import maybe_pack_payload
    from repro.field import default_field
    from repro.field.array import set_batch_enabled

    field = default_field()
    elements = tuple(field(v) for v in (1, 2, 3))
    previous = set_batch_enabled(False)
    try:
        assert maybe_pack_payload(elements) is elements
    finally:
        set_batch_enabled(previous)


def test_acast_delivers_packed_vector_with_identical_bits():
    from repro.broadcast.acast import PackedFieldVector
    from repro.field import default_field
    from repro.field.array import set_batch_enabled

    field = default_field()
    vector = tuple(field(v) for v in range(16))

    def run(batch):
        previous = set_batch_enabled(batch)
        try:
            return _run_acast(4, 1, sender=1, message=vector,
                              network=SynchronousNetwork())
        finally:
            set_batch_enabled(previous)

    batched, scalar = run(True), run(False)
    assert len(batched.honest_outputs()) == len(scalar.honest_outputs()) == 4
    for output in batched.honest_outputs().values():
        assert isinstance(output, PackedFieldVector)
        assert output.elements() == list(vector)
    for output in scalar.honest_outputs().values():
        assert tuple(output) == vector
    # The packed path must not change the transcript accounting.
    assert batched.metrics.messages_sent == scalar.metrics.messages_sent
    assert batched.metrics.total_bits == scalar.metrics.total_bits


def test_equivocating_sender_with_packed_vectors_stays_consistent():
    """A perturbed packed vector is a *different* digest: consistency holds."""
    from repro.field import default_field

    field = default_field()
    vector = tuple(field(v) for v in range(8))
    result = _run_acast(
        4, 1, sender=1, message=vector, network=SynchronousNetwork(),
        corrupt={1: EquivocatingBehavior(group_b=[3, 4], tag_predicate=lambda t: True)},
        max_time=100.0,
    )
    outputs = list(result.honest_outputs().values())
    assert len({hash(v) for v in outputs}) <= 1


def test_late_input_via_provide_input():
    runner = ProtocolRunner(4, network=SynchronousNetwork())
    instances = {}

    def factory(party):
        inst = AcastProtocol(party, "acast", sender=1, faults=1)
        instances[party.id] = inst
        return inst

    for pid, party in runner.parties.items():
        instances[pid] = factory(party)
    for inst in instances.values():
        inst.start()
    runner.simulator.schedule_timer(2.0, lambda: instances[1].provide_input("late"))
    runner.simulator.run(until=lambda: all(i.has_output for i in instances.values()), max_time=50.0)
    assert all(i.output == "late" for i in instances.values())
