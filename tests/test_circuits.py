"""Tests for the arithmetic-circuit representation, builder and library."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    CircuitBuilder,
    GateType,
    equality_to_zero_circuit,
    inner_product_circuit,
    mean_circuit,
    millionaires_product_circuit,
    multiplication_circuit,
    polynomial_evaluation_circuit,
    second_price_auction_circuit,
)
from repro.circuits.circuit import Circuit, Gate
from repro.field import default_field

F = default_field()


def test_builder_basic_gates_and_evaluation():
    builder = CircuitBuilder(F)
    x = builder.input(owner=1)
    y = builder.input(owner=2)
    s = builder.add(x, y)
    d = builder.sub(x, y)
    p = builder.mul(s, d)
    cm = builder.constant_mul(p, 3)
    ca = builder.constant_add(cm, 10)
    circuit = builder.build(outputs=[ca])
    outputs = circuit.evaluate({1: F(7), 2: F(2)})
    # ((7+2)*(7-2))*3 + 10 = 145
    assert outputs == [F(145)]


def test_multiplication_count_and_depth():
    builder = CircuitBuilder(F)
    a = builder.input(owner=1)
    b = builder.input(owner=2)
    c = builder.input(owner=3)
    ab = builder.mul(a, b)
    abc = builder.mul(ab, c)
    circuit = builder.build(outputs=[abc])
    assert circuit.multiplication_count == 2
    assert circuit.multiplicative_depth == 2
    layers = circuit.multiplication_layers()
    assert len(layers) == 2
    assert layers[0] == [ab]
    assert layers[1] == [abc]


def test_sum_and_product_helpers():
    builder = CircuitBuilder(F)
    wires = [builder.input(owner=i) for i in range(1, 6)]
    total = builder.sum(wires)
    prod = builder.product(wires)
    circuit = builder.build(outputs=[total, prod])
    inputs = {i: F(i) for i in range(1, 6)}
    outputs = circuit.evaluate(inputs)
    assert outputs[0] == F(15)
    assert outputs[1] == F(120)
    with pytest.raises(ValueError):
        builder.sum([])
    with pytest.raises(ValueError):
        builder.product([])


def test_power_helper():
    builder = CircuitBuilder(F)
    x = builder.input(owner=1)
    x5 = builder.power(x, 5)
    circuit = builder.build(outputs=[x5])
    assert circuit.evaluate({1: F(3)}) == [F(243)]
    with pytest.raises(ValueError):
        builder.power(x, 0)


def test_circuit_validation_rejects_forward_references():
    gates = [Gate(0, GateType.INPUT, owner=1), Gate(1, GateType.ADD, (0, 2)),
             Gate(2, GateType.INPUT, owner=2)]
    with pytest.raises(ValueError):
        Circuit(F, gates, outputs=[1])
    with pytest.raises(ValueError):
        Circuit(F, [Gate(0, GateType.INPUT, owner=1)], outputs=[5])


def test_missing_input_defaults_to_zero():
    circuit = multiplication_circuit(F, 3)
    outputs = circuit.evaluate({1: F(2), 2: F(3)})
    assert outputs == [F(0)]


def test_multiplication_circuit_library():
    circuit = multiplication_circuit(F, 4)
    assert circuit.multiplication_count == 3
    assert circuit.evaluate({i: F(i + 1) for i in range(1, 5)}) == [F(2 * 3 * 4 * 5)]
    assert set(circuit.input_owners) == {1, 2, 3, 4}


def test_mean_circuit_library():
    circuit = mean_circuit(F, 5, scale=2)
    assert circuit.multiplication_count == 0
    assert circuit.evaluate({i: F(i) for i in range(1, 6)}) == [F(30)]


def test_inner_product_circuit_library():
    circuit = inner_product_circuit(F, owners_x=[1, 2], owners_y=[3, 4])
    outputs = circuit.evaluate({1: F(2), 2: F(3), 3: F(5), 4: F(7)})
    assert outputs == [F(2 * 5 + 3 * 7)]
    with pytest.raises(ValueError):
        inner_product_circuit(F, owners_x=[1], owners_y=[2, 3])


def test_polynomial_evaluation_circuit_library():
    circuit = polynomial_evaluation_circuit(F, coefficients=[1, 2, 3], owner=1)
    # Horner with coefficients [1, 2, 3]: ((1)x + 2)x + 3 at x = 4 -> 27
    assert circuit.evaluate({1: F(4)}) == [F(27)]


def test_equality_to_zero_circuit_library():
    circuit = equality_to_zero_circuit(F, owner_a=1, owner_b=2)
    # Equal inputs give output 0; unequal inputs give a masked non-zero value.
    assert circuit.evaluate({1: F(5), 2: F(5)}) == [F(0)]
    assert circuit.evaluate({1: F(5), 2: F(6)}) != [F(0)]


def test_millionaires_product_circuit_library():
    circuit = millionaires_product_circuit(F, 4)
    assert circuit.multiplication_count == 3
    outputs = circuit.evaluate({1: F(1), 2: F(2), 3: F(3), 4: F(4)})
    assert outputs == [F(1 * 2 + 2 * 3 + 3 * 4)]


def test_second_price_auction_circuit_library():
    circuit = second_price_auction_circuit(F, 3)
    assert circuit.multiplicative_depth == 2
    bids = {1: F(2), 2: F(3), 3: F(4)}
    expected = sum(
        int(bids[i]) * int(bids[(i - 2) % 3 + 1]) * int(bids[i % 3 + 1]) for i in (1, 2, 3)
    )
    assert circuit.evaluate(bids) == [F(expected)]


def test_repr_contains_counts():
    circuit = multiplication_circuit(F, 3)
    assert "c_M=2" in repr(circuit)


@settings(max_examples=25, deadline=None)
@given(values=st.lists(st.integers(0, 1000), min_size=2, max_size=6))
def test_property_product_circuit_matches_python(values):
    n = len(values)
    circuit = multiplication_circuit(F, n)
    expected = 1
    for v in values:
        expected *= v
    outputs = circuit.evaluate({i + 1: F(v) for i, v in enumerate(values)})
    assert outputs == [F(expected)]
