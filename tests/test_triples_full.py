"""Integration tests for ΠTripSh and ΠPreProcessing on the full protocol stack.

These run the complete chain (VSS + ACS + BA + Beaver) and are therefore the
slowest tests in the suite; they use n = 4 and a single triple per dealer.
"""

import pytest

from repro.field import default_field
from repro.field.polynomial import interpolate_at
from repro.sim import (
    AsynchronousNetwork,
    CrashBehavior,
    ProtocolRunner,
    SynchronousNetwork,
    WrongValueBehavior,
)
from repro.triples.preprocessing import Preprocessing, extraction_yield, triples_per_dealer
from repro.triples.sharing import TripleSharing

F = default_field()


def _reconstruct(shares_by_party, degree):
    points = [(F.alpha(pid), value) for pid, value in shares_by_party.items()]
    return interpolate_at(F, points[: degree + 1], 0)


def _check_triples(result, ts, count=None):
    outputs = result.honest_outputs()
    assert outputs, "no honest outputs"
    lengths = {len(out) for out in outputs.values()}
    assert len(lengths) == 1
    total = lengths.pop()
    if count is not None:
        assert total >= count
    for index in range(total):
        a = _reconstruct({pid: out[index][0] for pid, out in outputs.items()}, ts)
        b = _reconstruct({pid: out[index][1] for pid, out in outputs.items()}, ts)
        c = _reconstruct({pid: out[index][2] for pid, out in outputs.items()}, ts)
        assert a * b == c
    return total


def test_extraction_yield_and_per_dealer_counts():
    assert extraction_yield(4, 1) == 1
    assert extraction_yield(7, 2) == 1
    assert extraction_yield(10, 2) == 2
    assert triples_per_dealer(4, 1, 3) == 3
    assert triples_per_dealer(10, 2, 3) == 2
    assert triples_per_dealer(4, 1, 0) == 1


def test_triple_sharing_honest_dealer_sync():
    runner = ProtocolRunner(4, network=SynchronousNetwork(), seed=1)

    def factory(party):
        return TripleSharing(party, "tripsh", dealer=1, ts=1, ta=0, num_triples=1, anchor=0.0)

    result = runner.run(factory, max_time=500_000.0)
    assert len(result.honest_outputs()) == 4
    _check_triples(result, ts=1, count=1)


def test_triple_sharing_honest_dealer_with_crashed_party():
    runner = ProtocolRunner(4, network=SynchronousNetwork(), seed=2,
                            corrupt={4: CrashBehavior()})

    def factory(party):
        return TripleSharing(party, "tripsh", dealer=2, ts=1, ta=0, num_triples=1, anchor=0.0)

    result = runner.run(factory, max_time=500_000.0)
    assert len(result.honest_outputs()) == 3
    _check_triples(result, ts=1, count=1)


def test_triple_sharing_corrupt_dealer_bad_triple_discarded():
    """A dealer sharing a non-multiplication triple is publicly discarded and
    replaced by the default (0, 0, 0) sharing -- still a valid triple."""
    bad_triples = [(F(2), F(3), F(7))]  # 2*3 != 7
    runner = ProtocolRunner(4, network=SynchronousNetwork(), seed=3)

    def factory(party):
        return TripleSharing(
            party, "tripsh", dealer=1, ts=1, ta=0, num_triples=1, anchor=0.0,
            dealer_triples=bad_triples * 3 if party.id == 1 else None,
        )

    result = runner.run(factory, max_time=500_000.0)
    outputs = result.honest_outputs()
    assert len(outputs) == 4
    for index in range(1):
        a = _reconstruct({pid: out[index][0] for pid, out in outputs.items()}, 1)
        b = _reconstruct({pid: out[index][1] for pid, out in outputs.items()}, 1)
        c = _reconstruct({pid: out[index][2] for pid, out in outputs.items()}, 1)
        assert a * b == c
        assert (int(a), int(b), int(c)) == (0, 0, 0)


def test_preprocessing_sync():
    runner = ProtocolRunner(4, network=SynchronousNetwork(), seed=4)

    def factory(party):
        return Preprocessing(party, "preproc", ts=1, ta=0, num_triples=1, anchor=0.0)

    result = runner.run(factory, max_time=800_000.0)
    assert len(result.honest_outputs()) == 4
    _check_triples(result, ts=1, count=1)


def test_preprocessing_sync_with_byzantine_party():
    runner = ProtocolRunner(4, network=SynchronousNetwork(), seed=5,
                            corrupt={3: WrongValueBehavior(offset=2)})

    def factory(party):
        return Preprocessing(party, "preproc", ts=1, ta=0, num_triples=1, anchor=0.0)

    result = runner.run(factory, max_time=800_000.0)
    assert len(result.honest_outputs()) == 3
    _check_triples(result, ts=1, count=1)


@pytest.mark.slow
def test_preprocessing_async():
    runner = ProtocolRunner(4, network=AsynchronousNetwork(max_delay=4.0), seed=6)

    def factory(party):
        return Preprocessing(party, "preproc", ts=1, ta=0, num_triples=1, anchor=0.0)

    result = runner.run(factory, max_time=800_000.0)
    assert len(result.honest_outputs()) == 4
    _check_triples(result, ts=1, count=1)
