"""Tests for Reed-Solomon decoding and Online Error Correction (Appendix A)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.oec import BatchOnlineErrorCorrector, OnlineErrorCorrector, OECStatus
from repro.codes.reed_solomon import rs_decode, rs_decode_batch, rs_interpolate_with_errors
from repro.field.gf import default_field
from repro.field.polynomial import Polynomial

F = default_field()


def _points(poly, indices):
    return [(F.alpha(i), poly.evaluate(F.alpha(i))) for i in indices]


def test_decode_without_errors():
    poly = Polynomial.random(F, 2, rng=random.Random(1))
    points = _points(poly, range(1, 6))
    assert rs_interpolate_with_errors(F, points, 2, 1) == poly
    assert rs_decode(F, points, 2, 1) == poly


def test_decode_with_one_error():
    poly = Polynomial.random(F, 2, rng=random.Random(2))
    points = _points(poly, range(1, 6))
    x, y = points[0]
    points[0] = (x, y + 1)
    assert rs_decode(F, points, 2, 1) == poly


def test_decode_with_max_errors():
    poly = Polynomial.random(F, 1, rng=random.Random(3))
    # n = 7, degree 1, t = 2 errors: 1 + 2*2 + 1 = 6 <= 7 points.
    points = _points(poly, range(1, 8))
    points[0] = (points[0][0], points[0][1] + 5)
    points[1] = (points[1][0], points[1][1] + 9)
    assert rs_decode(F, points, 1, 2) == poly


def test_decode_fails_with_too_many_errors():
    poly = Polynomial.random(F, 1, rng=random.Random(4))
    points = _points(poly, range(1, 5))
    # 3 corrupted out of 4 with t=1 cannot be decoded to the original.
    points[0] = (points[0][0], points[0][1] + 1)
    points[1] = (points[1][0], points[1][1] + 2)
    points[2] = (points[2][0], points[2][1] + 3)
    decoded = rs_decode(F, points, 1, 1)
    assert decoded != poly


def test_decode_insufficient_points_returns_none():
    poly = Polynomial.random(F, 3, rng=random.Random(5))
    points = _points(poly, range(1, 3))
    assert rs_interpolate_with_errors(F, points, 3, 1) is None


def test_decode_requires_agreement_threshold():
    # rs_decode additionally requires degree + max_errors + 1 agreeing points.
    poly = Polynomial.random(F, 2, rng=random.Random(6))
    points = _points(poly, range(1, 5))
    points[0] = (points[0][0], points[0][1] + 1)
    points[1] = (points[1][0], points[1][1] + 2)
    # Only 2 agreeing points remain < 2 + 1 + 1.
    assert rs_decode(F, points, 2, 1) is None


def test_oec_completes_with_honest_points():
    poly = Polynomial.random(F, 1, rng=random.Random(7))
    oec = OnlineErrorCorrector(F, degree=1, max_faults=1)
    assert oec.status is OECStatus.WAITING
    assert oec.add_point(F.alpha(1), poly.evaluate(F.alpha(1))) is None
    assert oec.add_point(F.alpha(2), poly.evaluate(F.alpha(2))) is None
    result = oec.add_point(F.alpha(3), poly.evaluate(F.alpha(3)))
    assert result == poly
    assert oec.done
    assert oec.secret() == poly.constant_term()
    assert oec.value_at(F.alpha(9)) == poly.evaluate(F.alpha(9))


def test_oec_tolerates_corrupt_point():
    poly = Polynomial.random(F, 1, rng=random.Random(8))
    oec = OnlineErrorCorrector(F, degree=1, max_faults=1)
    oec.add_point(F.alpha(1), poly.evaluate(F.alpha(1)) + 5)  # corrupt
    for i in range(2, 5):
        oec.add_point(F.alpha(i), poly.evaluate(F.alpha(i)))
    assert oec.done
    assert oec.polynomial == poly


def test_oec_ignores_duplicate_x():
    poly = Polynomial.random(F, 1, rng=random.Random(9))
    oec = OnlineErrorCorrector(F, degree=1, max_faults=1)
    oec.add_point(F.alpha(1), poly.evaluate(F.alpha(1)))
    oec.add_point(F.alpha(1), poly.evaluate(F.alpha(1)) + 3)  # later conflicting report ignored
    oec.add_point(F.alpha(2), poly.evaluate(F.alpha(2)))
    oec.add_point(F.alpha(3), poly.evaluate(F.alpha(3)))
    assert oec.done and oec.polynomial == poly


def test_oec_waits_until_threshold():
    oec = OnlineErrorCorrector(F, degree=2, max_faults=1)
    assert oec.try_decode() is None
    assert oec.secret() is None
    assert oec.value_at(1) is None


def test_oec_after_done_is_stable():
    poly = Polynomial.random(F, 1, rng=random.Random(10))
    oec = OnlineErrorCorrector(F, degree=1, max_faults=0)
    oec.add_point(F.alpha(1), poly.evaluate(F.alpha(1)))
    oec.add_point(F.alpha(2), poly.evaluate(F.alpha(2)))
    assert oec.done
    # Adding junk afterwards does not change the decoded polynomial.
    oec.add_point(F.alpha(3), F(12345))
    assert oec.polynomial == poly


# -- batched decoding / batch OEC ---------------------------------------------


def _batch_rows(polys, n, corrupt_parties=(), offset=9):
    """Per-party rows of evaluations, with whole rows corrupted."""
    rows = {}
    for i in range(1, n + 1):
        row = [poly.evaluate(F.alpha(i)) for poly in polys]
        if i in corrupt_parties:
            row = [value + offset for value in row]
        rows[i] = row
    return rows


@pytest.mark.parametrize("n,t", [(4, 1), (8, 2), (16, 5)])
def test_batch_oec_recovers_with_exactly_t_corrupt_rows(n, t):
    rng = random.Random(100 + n)
    polys = [Polynomial.random(F, t, rng=rng) for _ in range(5)]
    corrupt = set(range(1, t + 1))  # worst case: corrupt rows arrive first
    rows = _batch_rows(polys, n, corrupt)
    oec = BatchOnlineErrorCorrector(F, count=5, degree=t, max_faults=t)
    for i in range(1, n + 1):
        oec.add_row(F.alpha(i), rows[i])
    assert oec.done
    assert oec.secrets() == [poly.constant_term() for poly in polys]
    assert oec.values_at(F.alpha(n + 1)) == [
        poly.evaluate(F.alpha(n + 1)) for poly in polys
    ]


@pytest.mark.parametrize("n,t", [(4, 1), (8, 2), (16, 5)])
def test_batch_oec_fails_loudly_with_t_plus_1_corrupt_rows(n, t):
    rng = random.Random(200 + n)
    polys = [Polynomial.random(F, t, rng=rng) for _ in range(3)]
    corrupt = set(range(1, t + 2))  # one more corruption than tolerated
    rows = _batch_rows(polys, n, corrupt)
    oec = BatchOnlineErrorCorrector(F, count=3, degree=t, max_faults=t)
    for i in range(1, n + 1):
        oec.add_row(F.alpha(i), rows[i])
    assert not oec.done
    with pytest.raises(ValueError):
        oec.secrets()
    with pytest.raises(ValueError):
        oec.values_at(0)


def test_batch_oec_handles_per_column_missing_entries():
    rng = random.Random(42)
    polys = [Polynomial.random(F, 1, rng=rng) for _ in range(2)]
    oec = BatchOnlineErrorCorrector(F, count=2, degree=1, max_faults=1)
    # Party 1 garbles value 0 (None) but reports value 1 correctly.
    oec.add_row(F.alpha(1), [None, polys[1].evaluate(F.alpha(1))])
    for i in range(2, 5):
        oec.add_row(F.alpha(i), [poly.evaluate(F.alpha(i)) for poly in polys])
    assert oec.done
    assert oec.secrets() == [poly.constant_term() for poly in polys]


def test_batch_oec_first_report_per_sender_wins():
    rng = random.Random(43)
    poly = Polynomial.random(F, 1, rng=rng)
    oec = BatchOnlineErrorCorrector(F, count=1, degree=1, max_faults=1)
    oec.add_row(F.alpha(1), [poly.evaluate(F.alpha(1))])
    oec.add_row(F.alpha(1), [poly.evaluate(F.alpha(1)) + 3])  # conflicting re-send
    oec.add_row(F.alpha(2), [poly.evaluate(F.alpha(2))])
    oec.add_row(F.alpha(3), [poly.evaluate(F.alpha(3))])
    assert oec.done
    assert oec.secrets() == [poly.constant_term()]


def test_batch_oec_empty_batch_is_immediately_done():
    oec = BatchOnlineErrorCorrector(F, count=0, degree=1, max_faults=1)
    assert oec.done
    assert oec.secrets() == []


@pytest.mark.parametrize("n,t", [(4, 1), (8, 2), (16, 5)])
def test_rs_decode_batch_adversarial_rows_match_scalar(n, t):
    rng = random.Random(300 + n)
    polys = [Polynomial.random(F, t, rng=rng) for _ in range(4)]
    xs = list(range(1, n + 1))
    corrupt = rng.sample(xs, t)
    rows = []
    for poly in polys:
        rows.append(
            [
                int(poly.evaluate(x)) + (7 if x in corrupt else 0)
                for x in xs
            ]
        )
    decoded = rs_decode_batch(F, xs, rows, t, t)
    for poly, row, got in zip(polys, rows, decoded):
        assert got == rs_decode(F, list(zip(xs, row)), t, t)
        assert got == poly


@settings(max_examples=30, deadline=None)
@given(
    degree=st.integers(0, 3),
    faults=st.integers(0, 2),
    seed=st.integers(0, 2 ** 31),
)
def test_property_oec_recovers_with_d_plus_2t_plus_1_points(degree, faults, seed):
    """OEC succeeds once d + 2t + 1 points (t of them corrupt) are available."""
    rng = random.Random(seed)
    poly = Polynomial.random(F, degree, rng=rng)
    oec = OnlineErrorCorrector(F, degree=degree, max_faults=faults)
    index = 1
    for _ in range(faults):  # corrupt points first (worst case)
        oec.add_point(F.alpha(index), poly.evaluate(F.alpha(index)) + 7)
        index += 1
    for _ in range(degree + faults + 1):
        oec.add_point(F.alpha(index), poly.evaluate(F.alpha(index)))
        index += 1
    assert oec.done
    assert oec.polynomial == poly
