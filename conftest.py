"""Pytest bootstrap: make the in-tree package importable without installation.

``pip install -e .`` is the normal route, but on fully-offline environments
without the ``wheel`` package the editable install can fail; adding ``src``
to ``sys.path`` here keeps the test and benchmark suites runnable either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
