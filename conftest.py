"""Pytest bootstrap: make the in-tree package importable without installation.

``pip install -e .`` is the normal route, but on fully-offline environments
without the ``wheel`` package the editable install can fail; adding ``src``
to ``sys.path`` here keeps the test and benchmark suites runnable either way.
"""

import os
import sys

_ROOT = os.path.dirname(__file__)
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# The tier-1 suite runs a quick smoke of the batch benchmarks (see
# tests/test_field_array.py and tests/test_bench_smoke.py), so the
# benchmarks package must be importable from the tests no matter how pytest
# was invoked.
_BENCH = os.path.join(_ROOT, "benchmarks")
if os.path.isdir(_BENCH) and _BENCH not in sys.path:
    sys.path.append(_BENCH)


def pytest_addoption(parser):
    parser.addoption(
        "--field-kernel",
        action="store",
        default=None,
        choices=("int", "numpy", "gmpy2"),
        help="Run the whole suite under one numerical field kernel backend "
        "(default: auto-select numpy when importable). Every kernel is "
        "exact, so the suite must pass identically under any of them; "
        "selecting an uninstalled backend (e.g. gmpy2) fails fast.",
    )


def pytest_configure(config):
    requested = config.getoption("--field-kernel")
    if requested:
        import pytest

        from repro.field.kernels import set_kernel_backend

        try:
            set_kernel_backend(requested)
        except ValueError as exc:
            # e.g. --field-kernel=gmpy2 on a machine without gmpy2: fail
            # fast with a clean message instead of an INTERNALERROR dump.
            raise pytest.UsageError(str(exc))
    config.addinivalue_line("markers", "slow: long-running test")
    config.addinivalue_line(
        "markers",
        "bench_smoke: tiny-size smoke of a benchmarks/bench_*.py module, run "
        "under tier-1 so the benchmark suite cannot silently rot",
    )
    config.addinivalue_line(
        "markers",
        "tier2: the slow full scenario-matrix grid and other exhaustive "
        "sweeps; deselected from the default (tier-1) run, executed with "
        "`pytest -m tier2`",
    )
    config.addinivalue_line(
        "markers",
        "examples_smoke: runs an examples/*.py entry point end to end so the "
        "public examples cannot silently rot; deselect with "
        "`-m 'not examples_smoke'` when iterating",
    )
    config.addinivalue_line(
        "markers",
        "service: long-lived MpcService tests (reservoir preprocessing, "
        "checkpoint/restore, crash-rejoin); run in tier-1, selectable with "
        "`-m service`, and covered by the tests/conftest.py per-test "
        "wall-clock cap (override with @pytest.mark.service(timeout=N))",
    )
    config.addinivalue_line(
        "markers",
        "tcp: opens real sockets (and possibly spawns party processes); the "
        "tests/conftest.py timeout fixture gives each a hard per-test "
        "wall-clock cap so a wedged socket can never hang tier-1 "
        "(override with @pytest.mark.tcp(timeout=N))",
    )
    config.addinivalue_line(
        "markers",
        "calibrate: runs the dispatch-threshold calibration CLI (smoke mode) "
        "in a subprocess; covered by the tests/conftest.py wall-clock cap "
        "(override with @pytest.mark.calibrate(timeout=N))",
    )
    config.addinivalue_line(
        "markers",
        "chaos: fault-injection tests (FaultPlan campaigns, partition/"
        "reconnect exercises, process kill-restart-rejoin); covered by the "
        "tests/conftest.py wall-clock cap (override with "
        "@pytest.mark.chaos(timeout=N))",
    )


def pytest_collection_modifyitems(config, items):
    """Keep tier-1 (`pytest -x -q`) fast: deselect tier2 unless -m was given.

    Explicit node ids (``pytest path::test[param]``) also bypass the
    deselection, so a failing grid cell reproduces by pasting its id.  A
    marker expression only bypasses it when it mentions tier2 itself --
    ``-m "not examples_smoke"`` must not accidentally pull in the grid.
    """
    if "tier2" in (config.getoption("-m") or ""):
        return
    explicit = [str(arg).replace(os.sep, "/") for arg in config.args if "::" in str(arg)]

    def requested_by_node_id(item):
        return any(arg.endswith(item.nodeid) for arg in explicit)

    tier2_items = [
        item
        for item in items
        if item.get_closest_marker("tier2") and not requested_by_node_id(item)
    ]
    if tier2_items:
        config.hook.pytest_deselected(items=tier2_items)
        keep = set(id(item) for item in tier2_items)
        items[:] = [item for item in items if id(item) not in keep]
