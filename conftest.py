"""Pytest bootstrap: make the in-tree package importable without installation.

``pip install -e .`` is the normal route, but on fully-offline environments
without the ``wheel`` package the editable install can fail; adding ``src``
to ``sys.path`` here keeps the test and benchmark suites runnable either way.
"""

import os
import sys

_ROOT = os.path.dirname(__file__)
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# The tier-1 suite runs a quick smoke of the batch benchmarks (see
# tests/test_field_array.py and tests/test_bench_smoke.py), so the
# benchmarks package must be importable from the tests no matter how pytest
# was invoked.
_BENCH = os.path.join(_ROOT, "benchmarks")
if os.path.isdir(_BENCH) and _BENCH not in sys.path:
    sys.path.append(_BENCH)


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running test")
    config.addinivalue_line(
        "markers",
        "bench_smoke: tiny-size smoke of a benchmarks/bench_*.py module, run "
        "under tier-1 so the benchmark suite cannot silently rot",
    )
